package engine

import (
	"context"
	"fmt"
	"time"

	"hipress/internal/core"
	"hipress/internal/netsim"
	"hipress/internal/tensor"
)

// TCPChaosExp is the socket plane's end-to-end gate: the same reliable
// compressed rounds run over (1) the chan transport as the bit-identity
// reference, (2) clean loopback TCP, (3) TCP under wire-level chaos —
// deterministic mid-stream RSTs and in-frame byte corruption — and (4) TCP
// with one peer fully half-open behind a one-way partition. Arms 2 and 3
// must digest byte-identically to arm 1 with zero peer exclusions (redial,
// generation resync, frame checksums, and reliable retransmission absorb
// every injected fault); arm 4 must convict the half-open peer through
// φ-accrual instead of wedging. The table publishes the absorbed-fault
// ledger — redials, resyncs, reconnect evidence, cuts, corrupted bytes,
// convictions — that BENCH_tcpchaos.json archives in CI.

// tcpchaosRounds is the per-arm round count; every arm replays the same
// deterministic gradients so digests are comparable across arms.
const tcpchaosRounds = 3

// tcpchaosGrads builds round r's per-node gradients, a pure function of
// (round, node) so every arm sees identical inputs.
func tcpchaosGrads(r, n int) []map[string][]float32 {
	// Fixed slice order: the per-node RNG must fill gradients in the same
	// sequence every run, or the inputs themselves are nondeterministic.
	sizes := []struct {
		name string
		n    int
	}{{"w1", 700}, {"w2", 64}}
	grads := make([]map[string][]float32, n)
	for v := 0; v < n; v++ {
		rng := tensor.NewRNG(uint64(1000*r + v + 1))
		g := map[string][]float32{}
		for _, s := range sizes {
			buf := make([]float32, s.n)
			rng.FillNormal(buf, 1)
			g[s.name] = buf
		}
		grads[v] = g
	}
	return grads
}

// tcpchaosArm is one arm's aggregated run.
type tcpchaosArm struct {
	digests    []uint64
	reconnects int64
	excluded   []int
	tcp        *netsim.TCPStats
	wire       *netsim.WireChaosStats
}

// runTCPChaosArm executes the shared round schedule under cfg and
// aggregates digests plus the last round's socket-plane evidence.
func runTCPChaosArm(cfg core.LiveConfig, n int) (*tcpchaosArm, error) {
	lc, err := core.NewLiveCluster(n, cfg)
	if err != nil {
		return nil, err
	}
	arm := &tcpchaosArm{}
	for r := 0; r < tcpchaosRounds; r++ {
		out, health, err := lc.SyncRoundContext(context.Background(), tcpchaosGrads(r, n))
		if err != nil {
			return nil, fmt.Errorf("round %d: %w", r, err)
		}
		arm.digests = append(arm.digests, hashRound(out))
		arm.reconnects += health.Reconnects
		arm.excluded = health.ExcludedPeers
		arm.tcp, arm.wire = health.TCP, health.Wire
	}
	return arm, nil
}

// tcpchaosConfig is the shared arm shape: the reliable compressed PS rounds
// the other live gates run.
func tcpchaosConfig() core.LiveConfig {
	return core.LiveConfig{
		Strategy: core.StrategyPS, Parts: 2,
		Algo: "onebit", ErrorFeedback: true,
		Reliable: true,
		Retry: core.RetryPolicy{MaxAttempts: 8,
			BaseBackoff: 2 * time.Millisecond, MaxBackoff: 20 * time.Millisecond},
		Telemetry: DefaultTelemetry(),
	}
}

// TCPChaosExp runs the four socket-plane arms and gates on bit-identity,
// fault absorption, and half-open conviction.
func TCPChaosExp() (*Table, error) {
	const n = 3

	reference := tcpchaosConfig()
	ref, err := runTCPChaosArm(reference, n)
	if err != nil {
		return nil, fmt.Errorf("engine: tcpchaos reference arm: %w", err)
	}

	clean := tcpchaosConfig()
	clean.Transport = "tcp"
	tcpClean, err := runTCPChaosArm(clean, n)
	if err != nil {
		return nil, fmt.Errorf("engine: tcpchaos tcp-clean arm: %w", err)
	}

	chaos := tcpchaosConfig()
	chaos.Transport = "tcp"
	chaos.TCP = &netsim.TCPOptions{
		RedialAttempts: 6,
		// A corrupted length prefix can wedge a receiver mid-bogus-frame;
		// a short idle read deadline kills the desynced stream fast enough
		// for redial + generation resync inside the retry budget.
		IdleReadTimeout: 40 * time.Millisecond,
		Chaos: &netsim.WireChaosConfig{
			Seed:    77,
			CutProb: 0.9,
			// Keep the cut offsets inside what a small round writes per link.
			CutAfterMax:   600,
			CorruptProb:   1,
			CorruptWindow: 64,
		},
	}
	wired, err := runTCPChaosArm(chaos, n)
	if err != nil {
		return nil, fmt.Errorf("engine: tcpchaos wire-chaos arm: %w", err)
	}

	const hn, victim = 4, 3
	oneway := map[netsim.Link]bool{}
	for v := 0; v < hn; v++ {
		if v != victim {
			oneway[netsim.Link{Src: v, Dst: victim}] = true
			oneway[netsim.Link{Src: victim, Dst: v}] = true
		}
	}
	half := tcpchaosConfig()
	half.Transport = "tcp"
	half.Health = &core.HealthConfig{Adaptive: true, HeartbeatEvery: 5 * time.Millisecond}
	half.OnPeerFail, half.Renormalize = core.DegradeExclude, true
	half.RoundTimeout = 30 * time.Second
	half.TCP = &netsim.TCPOptions{Chaos: &netsim.WireChaosConfig{Seed: 11, OneWay: oneway}}
	lc, err := core.NewLiveCluster(hn, half)
	if err != nil {
		return nil, err
	}
	_, halfHealth, err := lc.SyncRoundContext(context.Background(), tcpchaosGrads(0, hn))
	if err != nil {
		return nil, fmt.Errorf("engine: tcpchaos half-open arm: %w", err)
	}

	// Self-asserting gates: the experiment fails loudly when the socket
	// plane's guarantees do not hold.
	for r := 0; r < tcpchaosRounds; r++ {
		if tcpClean.digests[r] != ref.digests[r] {
			return nil, fmt.Errorf("engine: tcpchaos: clean tcp round %d digest %016x != chan %016x — transports diverge",
				r, tcpClean.digests[r], ref.digests[r])
		}
		if wired.digests[r] != ref.digests[r] {
			return nil, fmt.Errorf("engine: tcpchaos: wire-chaos round %d digest %016x != chan %016x — a fault leaked into the merge",
				r, wired.digests[r], ref.digests[r])
		}
	}
	if wired.wire == nil || wired.wire.Cuts == 0 || wired.wire.CorruptedBytes == 0 {
		return nil, fmt.Errorf("engine: tcpchaos: injector never bit (wire %+v)", wired.wire)
	}
	if wired.tcp.Redials == 0 && wired.tcp.Resyncs == 0 {
		return nil, fmt.Errorf("engine: tcpchaos: chaos absorbed without redial or resync (tcp %+v)", wired.tcp)
	}
	if len(wired.excluded) != 0 {
		return nil, fmt.Errorf("engine: tcpchaos: wire faults escalated to exclusions %v", wired.excluded)
	}
	convicted := false
	for _, v := range halfHealth.ExcludedPeers {
		convicted = convicted || v == victim
	}
	if !convicted {
		return nil, fmt.Errorf("engine: tcpchaos: half-open peer %d not convicted (excluded %v, phi %v)",
			victim, halfHealth.ExcludedPeers, halfHealth.Phi)
	}
	if halfHealth.Wire == nil || halfHealth.Wire.BlackholedWrites == 0 {
		return nil, fmt.Errorf("engine: tcpchaos: one-way partition never swallowed a write (wire %+v)", halfHealth.Wire)
	}

	t := &Table{
		Title: fmt.Sprintf("TCP chaos: socket-plane parity and fault absorption (%d rounds/arm, reliable onebit PS)",
			tcpchaosRounds),
		Header: []string{"arm", "digest", "redials", "resyncs", "reconnects", "cuts", "corrupt-bytes", "blackholed", "convicted"},
		Notes: []string{
			"digest = FNV-64a over every node's merged gradients; all parity arms must match chan exactly",
			"wire-chaos: deterministic mid-stream RSTs (CutProb 0.9) + one corrupted byte per connection (CorruptProb 1)",
			"half-open: one peer behind a bidirectional one-way partition; φ-accrual must convict it, not wedge the round",
		},
	}
	row := func(name, digest string, tcp *netsim.TCPStats, wire *netsim.WireChaosStats, reconn int64, excluded []int) {
		var redials, resyncs int64
		if tcp != nil {
			redials, resyncs = tcp.Redials, tcp.Resyncs
		}
		var cuts, corrupted, blackholed int64
		if wire != nil {
			cuts, corrupted, blackholed = wire.Cuts, wire.CorruptedBytes, wire.BlackholedWrites
		}
		t.AddRow(name, digest, redials, resyncs, reconn, cuts, corrupted, blackholed,
			fmt.Sprintf("%v", excluded))
	}
	digest := func(a *tcpchaosArm) string {
		return fmt.Sprintf("%016x", a.digests[len(a.digests)-1])
	}
	row("chan (reference)", digest(ref), nil, nil, ref.reconnects, ref.excluded)
	row("tcp clean", digest(tcpClean), tcpClean.tcp, tcpClean.wire, tcpClean.reconnects, tcpClean.excluded)
	row("tcp wire-chaos", digest(wired), wired.tcp, wired.wire, wired.reconnects, wired.excluded)
	row("tcp half-open", "degraded", halfHealth.TCP, halfHealth.Wire,
		halfHealth.Reconnects, halfHealth.ExcludedPeers)
	return t, nil
}
