package engine

import "hipress/internal/sim"

// trackerAlias re-exports the simulator's span tracker for Result consumers
// without leaking the sim package into their imports.
type trackerAlias = sim.Tracker
