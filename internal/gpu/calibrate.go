package gpu

// Calibration constants for the device timing models. Each value is fitted
// to a number the paper states outright, so that the microbenchmarks in §4.4
// reproduce by construction and everything downstream (synchronization
// timing, SeCoPa plans, end-to-end throughput) inherits a consistent device.
const (
	// v100EffBW is the effective per-pass streaming bandwidth of optimized
	// CompLL kernels on a V100, in bytes/second.
	//
	// Anchor (§4.4): "the encode of CompLL-TBQ runs over 12× faster than the
	// OSS-TBQ's GPU implementation which takes 38.2 ms to compress a 256 MB
	// gradient". CompLL-TBQ therefore takes ≈3.18 ms at 256 MB; with TBQ's
	// two passes, 2 × 268435456 B / 3.17 ms ≈ 170 GB/s. (The V100's peak
	// HBM2 bandwidth is 900 GB/s; real multi-pass kernels with atomics land
	// well below peak, so 170 GB/s effective is plausible.)
	v100EffBW = 170e9

	// gtx1080EffBW scales v100EffBW by the boards' memory-bandwidth ratio
	// (484 GB/s GDDR5X vs 900 GB/s HBM2 ≈ 0.54): compression kernels are
	// memory-bound, so effective bandwidth tracks memory bandwidth.
	gtx1080EffBW = 91e9

	// gpuLaunch is the per-kernel launch + host coordination overhead. ~10 µs
	// covers a CUDA launch plus the callback plumbing CaSync batches away
	// with batch compression (§3.2).
	gpuLaunch = 10e-6

	// cpuEffBW is fitted to §2.5: "its CPU implementation runs 35.6× slower
	// than the GPU-oriented counterpart" (onebit). GPU onebit at 256 MB is
	// ≈3.17 ms, so CPU onebit is ≈113 ms → 2 passes × 268435456 B / 113 ms
	// ≈ 4.75 GB/s.
	cpuEffBW = 4.75e9

	// cpuDispatch is the function-call overhead of the CPU path; effectively
	// negligible next to its bandwidth limit.
	cpuDispatch = 2e-6

	// ti1080ComputeScale: DNN iteration time ratio of a 1080 Ti to a V100.
	// Public fp32 training benchmarks of the era put the V100 at ≈2.5-3× a
	// 1080 Ti on conv nets and transformers; 2.8 is the midpoint we adopt.
	ti1080ComputeScale = 2.8

	// PCIeBW is the host↔device transfer bandwidth used by the on-CPU
	// compression ablation (gradients must cross PCIe 3.0 x16 twice);
	// ~12 GB/s effective.
	PCIeBW = 12e9

	// NVLinkBW is the intra-node GPU↔GPU aggregate bandwidth used by local
	// aggregation on the EC2 nodes (NVLink, "orders of magnitude higher than
	// the inter-node links"), bytes/second effective.
	NVLinkBW = 120e9

	// PCIeSwitchBW is the intra-node GPU↔GPU bandwidth on the local cluster
	// nodes, whose two 1080 Ti connect via a PCIe switch.
	PCIeSwitchBW = 10e9
)
