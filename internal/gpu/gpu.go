// Package gpu models the compression-compute devices of the paper's testbeds:
// NVIDIA V100 (AWS p3dn.24xlarge), NVIDIA GTX 1080 Ti (local cluster), and a
// Xeon-class CPU (for the on-CPU compression ablation).
//
// The paper runs compression as CUDA kernels; here the *data* plane runs the
// same math in Go (package compress) while the *timing* plane answers "how
// long would this kernel take on the real device" through a roofline model:
//
//	T(kernel, m bytes) = launch overhead + passes × m / effective bandwidth
//
// with per-algorithm pass counts and per-implementation (CompLL vs OSS vs
// CPU) efficiency factors calibrated against the paper's published numbers
// (see calibrate.go). Every timing-sensitive experiment draws kernel costs
// from this package, so the calibration constants are the single source of
// truth for "GPU speed" in the repository.
package gpu

import (
	"fmt"
	"strings"
)

// Kind selects a device model.
type Kind int

// Device kinds used in the paper's evaluation.
const (
	V100 Kind = iota // Tesla V100 32GB (AWS EC2 p3dn.24xlarge)
	GTX1080Ti
	CPUXeon // two 16-core E5-2620, for the on-CPU ablation
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case V100:
		return "V100"
	case GTX1080Ti:
		return "1080Ti"
	case CPUXeon:
		return "CPU-Xeon"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Device describes one compression-compute device. All times are seconds,
// all sizes bytes.
type Device struct {
	Kind Kind
	// EffBW is the effective single-pass streaming bandwidth of optimized
	// (CompLL-grade) kernels in bytes/second.
	EffBW float64
	// Launch is the fixed kernel-launch + CPU→GPU coordination overhead per
	// kernel invocation in seconds.
	Launch float64
	// ComputeScale scales DNN forward/backward times relative to a V100
	// (V100 = 1.0; a slower device has ComputeScale > 1).
	ComputeScale float64
}

// NewDevice returns the calibrated model for the given kind.
func NewDevice(k Kind) *Device {
	switch k {
	case V100:
		return &Device{Kind: k, EffBW: v100EffBW, Launch: gpuLaunch, ComputeScale: 1.0}
	case GTX1080Ti:
		return &Device{Kind: k, EffBW: gtx1080EffBW, Launch: gpuLaunch, ComputeScale: ti1080ComputeScale}
	case CPUXeon:
		return &Device{Kind: k, EffBW: cpuEffBW, Launch: cpuDispatch, ComputeScale: 20}
	default:
		panic("gpu: unknown device kind")
	}
}

// Impl identifies whose implementation of an algorithm is being timed.
type Impl int

// Implementation variants. CompLL is the paper's auto-generated optimized
// code; OSS the open-source baselines; the CPU variant is selected by the
// device kind, not by Impl.
const (
	CompLL Impl = iota
	OSS
)

// ImplOf infers the implementation variant from a registry algorithm name
// ("oss-dgc" → OSS) and returns the bare algorithm family name.
func ImplOf(name string) (family string, impl Impl) {
	if f, ok := strings.CutPrefix(name, "oss-"); ok {
		return familyOf(f), OSS
	}
	// DSL-built algorithms ("cll-dgc") time like CompLL's optimized kernels
	// of the same family — that is the point of the toolkit.
	if f, ok := strings.CutPrefix(name, "cll-"); ok {
		return familyOf(f), CompLL
	}
	return familyOf(name), CompLL
}

// familyOf strips parameter suffixes: "dgc-0.001" → "dgc",
// "terngrad-4bit" → "terngrad".
func familyOf(name string) string {
	if i := strings.IndexByte(name, '-'); i >= 0 {
		return name[:i]
	}
	return name
}

// kernelShape holds the roofline coefficients of one algorithm family:
// how many effective passes over the input encode and decode make.
type kernelShape struct {
	encPasses float64
	decPasses float64
}

// kernelShapes: pass counts per algorithm family for optimized kernels.
// Encode generally needs reduction passes (min/max/threshold) plus the
// emission pass; decode is a single scatter/expand pass (plus overhead for
// unpacking sub-byte values).
var kernelShapes = map[string]kernelShape{
	"onebit":   {encPasses: 2.0, decPasses: 1.0},
	"tbq":      {encPasses: 2.0, decPasses: 0.35}, // decode touches only survivors
	"terngrad": {encPasses: 3.0, decPasses: 1.2},  // min+max reductions, then pack
	"dgc":      {encPasses: 3.2, decPasses: 0.2},  // selection passes; sparse decode
	"graddrop": {encPasses: 2.4, decPasses: 0.2},  // sampled threshold is cheaper
}

// ossSlowdown multiplies the optimized encode time to model the open-source
// implementations the paper measures against (§4.4): OSS-TBQ 12× slower and
// OSS-DGC up to 5.1× slower are stated outright. The paper gives no figure
// for its own OSS-onebit GPU port, but Fig. 10 shows BytePS(OSS-onebit)
// losing to the *uncompressed* Ring baseline on the local cluster, which
// requires the port's kernels to be far from memory-bandwidth-optimal; 8×
// reproduces that inversion. TernGrad/GradDrop OSS ports are assumed
// mid-pack.
var ossSlowdown = map[string]float64{
	"onebit":   8.0,
	"tbq":      12.0,
	"dgc":      5.1,
	"terngrad": 6.0,
	"graddrop": 6.0,
}

// EncodeTime returns the modeled wall time in seconds for compressing an
// m-byte gradient with the named algorithm on d. The name may carry an
// "oss-" prefix and parameter suffixes (registry names work directly).
func (d *Device) EncodeTime(algo string, m int64) float64 {
	family, impl := ImplOf(algo)
	shape, ok := kernelShapes[family]
	if !ok {
		shape = kernelShape{encPasses: 2.5, decPasses: 1.0}
	}
	t := d.Launch + shape.encPasses*float64(m)/d.EffBW
	if impl == OSS {
		s := ossSlowdown[family]
		if s == 0 {
			s = 4
		}
		t *= s
	}
	return t
}

// DecodeTime returns the modeled wall time in seconds for decompressing a
// payload that reconstructs an m-byte gradient on d.
func (d *Device) DecodeTime(algo string, m int64) float64 {
	family, impl := ImplOf(algo)
	shape, ok := kernelShapes[family]
	if !ok {
		shape = kernelShape{encPasses: 2.5, decPasses: 1.0}
	}
	t := d.Launch + shape.decPasses*float64(m)/d.EffBW
	if impl == OSS {
		s := ossSlowdown[family]
		if s == 0 {
			s = 4
		}
		t *= s
	}
	return t
}

// MergeTime returns the modeled wall time for aggregating two m-byte
// gradients (one streaming add).
func (d *Device) MergeTime(m int64) float64 {
	return d.Launch + float64(m)/d.EffBW
}

// CopyTime returns the modeled wall time for one extra m-byte device-side
// memory copy; BytePS's pipeline incurs several of these (Fig. 11 analysis).
func (d *Device) CopyTime(m int64) float64 {
	return d.Launch/2 + float64(m)/(2*d.EffBW)
}

// Curve is a fitted affine cost curve T(m) = Fixed + PerByte×m, the form the
// selective-compression planner profiles on the first training iteration
// (paper §3.3: "launch the GPU kernels ... to fit the compression and
// network cost curves").
type Curve struct {
	Fixed   float64 // seconds
	PerByte float64 // seconds per byte
}

// At evaluates the curve at m bytes.
func (c Curve) At(m float64) float64 { return c.Fixed + c.PerByte*m }

// ProfileEncode fits the encode cost curve for algo on d by "measuring" the
// model at two probe sizes, exactly how the real system fits from two kernel
// timings. The affine model is exact here, but keeping the probe-and-fit
// structure means swapping in a measured device preserves the planner.
func ProfileEncode(d *Device, algo string) Curve {
	return fitCurve(func(m int64) float64 { return d.EncodeTime(algo, m) })
}

// ProfileDecode fits the decode cost curve for algo on d.
func ProfileDecode(d *Device, algo string) Curve {
	return fitCurve(func(m int64) float64 { return d.DecodeTime(algo, m) })
}

func fitCurve(f func(int64) float64) Curve {
	const m1, m2 = 1 << 20, 64 << 20
	t1, t2 := f(m1), f(m2)
	perByte := (t2 - t1) / float64(m2-m1)
	return Curve{Fixed: t1 - perByte*m1, PerByte: perByte}
}
