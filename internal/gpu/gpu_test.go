package gpu

import (
	"math"
	"testing"
	"testing/quick"
)

const mb256 = 256 << 20

func TestKindString(t *testing.T) {
	if V100.String() != "V100" || GTX1080Ti.String() != "1080Ti" || CPUXeon.String() != "CPU-Xeon" {
		t.Fatalf("Kind strings wrong: %v %v %v", V100, GTX1080Ti, CPUXeon)
	}
	if Kind(99).String() == "" {
		t.Fatalf("unknown kind produced empty string")
	}
}

func TestImplOf(t *testing.T) {
	cases := []struct {
		in     string
		family string
		impl   Impl
	}{
		{"onebit", "onebit", CompLL},
		{"oss-onebit", "onebit", OSS},
		{"dgc-0.001", "dgc", CompLL},
		{"oss-dgc-0.001", "dgc", OSS},
		{"terngrad-4bit", "terngrad", CompLL},
		{"oss-tbq-0.05", "tbq", OSS},
	}
	for _, c := range cases {
		f, i := ImplOf(c.in)
		if f != c.family || i != c.impl {
			t.Errorf("ImplOf(%q) = (%q,%v), want (%q,%v)", c.in, f, i, c.family, c.impl)
		}
	}
}

// TestCalibrationAnchorTBQ: the paper says OSS-TBQ takes 38.2 ms to encode a
// 256 MB gradient and CompLL-TBQ is over 12× faster.
func TestCalibrationAnchorTBQ(t *testing.T) {
	d := NewDevice(V100)
	oss := d.EncodeTime("oss-tbq", mb256)
	if math.Abs(oss-0.0382) > 0.004 {
		t.Errorf("OSS-TBQ encode @256MB = %.4fs, paper says 0.0382s", oss)
	}
	opt := d.EncodeTime("tbq", mb256)
	if ratio := oss / opt; ratio < 11.5 || ratio > 12.5 {
		t.Errorf("OSS/CompLL TBQ ratio = %.1f, paper says over 12×", ratio)
	}
}

// TestCalibrationAnchorCPUOnebit: §2.5 says the CPU onebit runs 35.6× slower
// than the GPU implementation.
func TestCalibrationAnchorCPUOnebit(t *testing.T) {
	gpuT := NewDevice(V100).EncodeTime("onebit", mb256)
	cpuT := NewDevice(CPUXeon).EncodeTime("onebit", mb256)
	if ratio := cpuT / gpuT; ratio < 33 || ratio > 38 {
		t.Errorf("CPU/GPU onebit ratio = %.1f, paper says 35.6×", ratio)
	}
}

// TestCalibrationAnchorDGC: §4.4 says CompLL-DGC outperforms the manually
// optimized OSS-DGC encode by up to 5.1×.
func TestCalibrationAnchorDGC(t *testing.T) {
	d := NewDevice(V100)
	ratio := d.EncodeTime("oss-dgc", mb256) / d.EncodeTime("dgc", mb256)
	if ratio < 4.8 || ratio > 5.4 {
		t.Errorf("OSS/CompLL DGC ratio = %.1f, paper says up to 5.1×", ratio)
	}
}

func TestEncodeTimeMonotoneInSize(t *testing.T) {
	d := NewDevice(V100)
	for _, algo := range []string{"onebit", "tbq", "terngrad", "dgc", "graddrop"} {
		prev := -1.0
		for _, m := range []int64{1 << 10, 1 << 16, 1 << 22, 1 << 28} {
			tt := d.EncodeTime(algo, m)
			if tt <= prev {
				t.Errorf("%s: EncodeTime not increasing at m=%d", algo, m)
			}
			prev = tt
		}
	}
}

func TestLaunchOverheadDominatesSmallKernels(t *testing.T) {
	// The motivation for batch compression (§3.2): tiny gradients pay almost
	// pure launch overhead, so T(1KB) must be close to T(16KB).
	d := NewDevice(V100)
	small := d.EncodeTime("onebit", 1<<10)
	mid := d.EncodeTime("onebit", 16<<10)
	if mid > small*1.5 {
		t.Errorf("launch overhead not dominant: T(1KB)=%.2gs vs T(16KB)=%.2gs", small, mid)
	}
}

func Test1080TiSlowerThanV100(t *testing.T) {
	v := NewDevice(V100)
	ti := NewDevice(GTX1080Ti)
	if ti.EncodeTime("dgc", mb256) <= v.EncodeTime("dgc", mb256) {
		t.Errorf("1080Ti compression not slower than V100")
	}
	if ti.ComputeScale <= v.ComputeScale {
		t.Errorf("1080Ti ComputeScale %v not greater than V100 %v", ti.ComputeScale, v.ComputeScale)
	}
}

func TestDecodeCheaperThanEncodeForSparsifiers(t *testing.T) {
	d := NewDevice(V100)
	for _, algo := range []string{"dgc", "graddrop", "tbq"} {
		if d.DecodeTime(algo, mb256) >= d.EncodeTime(algo, mb256) {
			t.Errorf("%s: sparse decode should be cheaper than selection-based encode", algo)
		}
	}
}

func TestMergeAndCopyTimes(t *testing.T) {
	d := NewDevice(V100)
	if d.MergeTime(mb256) <= d.Launch {
		t.Errorf("MergeTime ignores size")
	}
	if d.CopyTime(mb256) >= d.MergeTime(mb256) {
		t.Errorf("CopyTime should be cheaper than MergeTime (single stream vs read+add+write)")
	}
}

func TestUnknownAlgoGetsDefaultShape(t *testing.T) {
	d := NewDevice(V100)
	if tt := d.EncodeTime("future-algo", 1<<20); tt <= 0 {
		t.Errorf("unknown algorithm produced non-positive time %v", tt)
	}
}

func TestProfileCurvesMatchModel(t *testing.T) {
	d := NewDevice(V100)
	for _, algo := range []string{"onebit", "dgc", "oss-tbq"} {
		enc := ProfileEncode(d, algo)
		dec := ProfileDecode(d, algo)
		for _, m := range []int64{1 << 12, 1 << 20, 1 << 26, 1 << 28} {
			if got, want := enc.At(float64(m)), d.EncodeTime(algo, m); math.Abs(got-want) > want*1e-9+1e-12 {
				t.Errorf("%s: encode curve at %d = %v, model %v", algo, m, got, want)
			}
			if got, want := dec.At(float64(m)), d.DecodeTime(algo, m); math.Abs(got-want) > want*1e-9+1e-12 {
				t.Errorf("%s: decode curve at %d = %v, model %v", algo, m, got, want)
			}
		}
	}
}

func TestNewDevicePanicsOnUnknownKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("NewDevice(99) did not panic")
		}
	}()
	NewDevice(Kind(99))
}

// Property: all modeled times are positive and OSS is never faster than
// CompLL for the same algorithm/size.
func TestQuickOSSNeverFaster(t *testing.T) {
	d := NewDevice(V100)
	algos := []string{"onebit", "tbq", "terngrad", "dgc", "graddrop"}
	f := func(mRaw uint32, ai uint8) bool {
		m := int64(mRaw%(1<<28)) + 1
		algo := algos[int(ai)%len(algos)]
		opt := d.EncodeTime(algo, m)
		oss := d.EncodeTime("oss-"+algo, m)
		return opt > 0 && oss >= opt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
