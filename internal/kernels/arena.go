package kernels

import (
	"sync"
	"sync/atomic"

	"hipress/internal/telemetry"
)

// The buffer arena hands out reusable byte and float32 buffers from
// size-classed sync.Pools. Buffers are checked out through a Lease: the
// holder accumulates every buffer it takes and returns them all with one
// Release call. On the live path one lease spans a training round — payloads
// handed to the transport stay checked out until the round's sends are
// acknowledged and the round tears down, then the whole lease recycles.
//
// Size classes are powers of two from minClass (1 KiB) up; requests above
// maxClass (64 MiB) fall through to plain make (they are rare enough that
// pinning them in pools would be a leak, not a win).

const (
	minClassBits = 10 // 1 KiB
	maxClassBits = 26 // 64 MiB
	numClasses   = maxClassBits - minClassBits + 1
)

// buf is the pooled unit: the wrapper struct itself is what lives in the
// sync.Pool, so a Put never allocates a fresh header.
type buf struct {
	b     []byte
	class int8
	kind  int8 // 0 = bytes, 1 = f32 (tracks which free list it belongs to)
	next  *buf // intrusive list link while held by a Lease
}

type arena struct {
	bytePools [numClasses]sync.Pool
	f32Pools  [numClasses]sync.Pool
	wrappers  sync.Pool // spare *buf wrappers for oversize (unpooled) buffers

	gets atomic.Int64
	hits atomic.Int64

	met atomic.Pointer[arenaMetrics]
}

type arenaMetrics struct {
	gets *telemetry.Counter
	hits *telemetry.Counter
}

var defaultArena = &arena{}

// classFor returns the size-class index for a request of n bytes, or -1 when
// the request exceeds the largest class.
func classFor(n int) int {
	c := 0
	for size := 1 << minClassBits; size < n; size <<= 1 {
		c++
	}
	if c >= numClasses {
		return -1
	}
	return c
}

func classSize(c int) int { return 1 << (minClassBits + c) }

// Lease is a checkout scope for arena buffers. The zero value is ready to
// use. Leases are not safe for concurrent use; on the live path each round
// owns its own lease.
type Lease struct {
	head *buf
}

// Bytes checks out a []byte of length n (capacity may be larger). Contents
// are unspecified — callers that need zeroed memory must clear it.
func (l *Lease) Bytes(n int) []byte {
	b := defaultArena.get(n, 0)
	b.next = l.head
	l.head = b
	return b.b[:n]
}

// F32 checks out a []float32 of length n. Contents are unspecified.
func (l *Lease) F32(n int) []float32 {
	b := defaultArena.get(n*4, 1)
	b.next = l.head
	l.head = b
	return bytesAsF32(b.b)[:n]
}

// Adopt splices every buffer held by other into l and resets other, so the
// adopted buffers now release with l. This is the multi-lease checkout
// pattern of the pipelined live plane: a sender checks buffers out through
// a private scratch lease without contending on the round lease's lock,
// then hands ownership over once the payload is staged. Both leases must be
// externally synchronized as usual; adopting a lease into itself or an
// empty/nil lease is a no-op.
func (l *Lease) Adopt(other *Lease) {
	if other == nil || other == l || other.head == nil {
		return
	}
	tail := other.head
	for tail.next != nil {
		tail = tail.next
	}
	tail.next = l.head
	l.head = other.head
	other.head = nil
}

// Release returns every buffer checked out through the lease to the arena
// and resets the lease for reuse. Buffers must no longer be referenced by
// the caller after Release.
func (l *Lease) Release() {
	for b := l.head; b != nil; {
		next := b.next
		b.next = nil
		defaultArena.put(b)
		b = next
	}
	l.head = nil
}

func (a *arena) get(n int, kind int8) *buf {
	a.gets.Add(1)
	m := a.met.Load()
	if m != nil {
		m.gets.Inc()
	}
	c := classFor(n)
	if c < 0 {
		// Oversize: plain allocation, wrapper still pooled.
		w, _ := a.wrappers.Get().(*buf)
		if w == nil {
			w = &buf{}
		}
		w.b = make([]byte, n)
		w.class = -1
		w.kind = kind
		return w
	}
	pool := &a.bytePools[c]
	if kind == 1 {
		pool = &a.f32Pools[c]
	}
	if w, _ := pool.Get().(*buf); w != nil {
		a.hits.Add(1)
		if m != nil {
			m.hits.Inc()
		}
		return w
	}
	var backing []byte
	if kind == 1 {
		// Allocate via []float32 so the backing array is 4-byte aligned by
		// construction (it always is in practice, but make it explicit).
		backing = f32AsBytes(make([]float32, classSize(c)/4))
	} else {
		backing = make([]byte, classSize(c))
	}
	return &buf{b: backing, class: int8(c), kind: kind}
}

func (a *arena) put(w *buf) {
	if w.class < 0 {
		w.b = nil // drop oversize backing, recycle only the wrapper
		a.wrappers.Put(w)
		return
	}
	w.b = w.b[:classSize(int(w.class))]
	if w.kind == 1 {
		a.f32Pools[w.class].Put(w)
	} else {
		a.bytePools[w.class].Put(w)
	}
}

// ArenaStats reports checkout traffic on the default arena.
type ArenaStats struct {
	Gets int64 // total checkouts
	Hits int64 // checkouts served from a pool (no allocation)
}

// DefaultArenaStats snapshots the default arena.
func DefaultArenaStats() ArenaStats {
	return ArenaStats{Gets: defaultArena.gets.Load(), Hits: defaultArena.hits.Load()}
}
