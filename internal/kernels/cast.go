package kernels

import "unsafe"

// bytesAsF32 reinterprets a byte slice as float32s without copying. The
// slice must be 4-byte aligned and len(b)%4 == 0; arena backing arrays are
// allocated through []float32 for exactly this reason. Used only inside the
// arena — payload byte layouts on the wire remain explicit little-endian.
func bytesAsF32(b []byte) []float32 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*float32)(unsafe.Pointer(&b[0])), len(b)/4)
}

// f32AsBytes reinterprets a float32 slice as bytes without copying.
func f32AsBytes(f []float32) []byte {
	if len(f) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&f[0])), len(f)*4)
}
