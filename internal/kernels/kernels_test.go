package kernels

import (
	"runtime"
	"sync/atomic"
	"testing"

	"hipress/internal/telemetry"
)

func TestChunkGeometry(t *testing.T) {
	cases := []struct {
		n, want int
	}{
		{0, 0}, {1, 1}, {ChunkElems - 1, 1}, {ChunkElems, 1},
		{ChunkElems + 1, 2}, {10 * ChunkElems, 10}, {10*ChunkElems + 7, 11},
	}
	for _, c := range cases {
		if got := NumChunks(c.n); got != c.want {
			t.Errorf("NumChunks(%d) = %d, want %d", c.n, got, c.want)
		}
	}
	// Ranges must tile [0, n) exactly, in order, regardless of worker count.
	for _, n := range []int{1, 7, ChunkElems, ChunkElems + 1, 3*ChunkElems + 13} {
		prev := 0
		for c := 0; c < NumChunks(n); c++ {
			lo, hi := ChunkRange(n, c)
			if lo != prev || hi <= lo || hi > n {
				t.Fatalf("n=%d chunk %d: bad range [%d,%d) prev=%d", n, c, lo, hi, prev)
			}
			prev = hi
		}
		if prev != n {
			t.Fatalf("n=%d: chunks cover [0,%d), want [0,%d)", n, prev, n)
		}
	}
	if ChunkElems%8 != 0 {
		t.Fatalf("ChunkElems=%d must be a multiple of 8 for bit-packed payload alignment", ChunkElems)
	}
}

type touchOp struct {
	n    int
	seen []atomic.Int32
}

func (o *touchOp) RunChunk(c int) {
	lo, hi := ChunkRange(o.n, c)
	for i := lo; i < hi; i++ {
		o.seen[i].Add(1)
	}
}

func TestPoolRunsEveryChunkExactlyOnce(t *testing.T) {
	p := NewPool(4)
	for _, n := range []int{1, ChunkElems, 5*ChunkElems + 3, 16 * ChunkElems} {
		op := &touchOp{n: n, seen: make([]atomic.Int32, n)}
		p.Run(NumChunks(n), op)
		for i := range op.seen {
			if got := op.seen[i].Load(); got != 1 {
				t.Fatalf("n=%d element %d touched %d times", n, i, got)
			}
		}
	}
}

func TestPoolReuseAcrossRuns(t *testing.T) {
	p := NewPool(3)
	for iter := 0; iter < 50; iter++ {
		n := 2*ChunkElems + iter
		op := &touchOp{n: n, seen: make([]atomic.Int32, n)}
		p.Run(NumChunks(n), op)
		for i := range op.seen {
			if op.seen[i].Load() != 1 {
				t.Fatalf("iter %d: element %d not touched exactly once", iter, i)
			}
		}
	}
}

func TestSetWorkersClampsParallelism(t *testing.T) {
	old := SetWorkers(1)
	defer SetWorkers(old)
	if w := Workers(); w != 1 {
		t.Fatalf("Workers() = %d after SetWorkers(1)", w)
	}
	before := PoolStats()
	op := &touchOp{n: 4 * ChunkElems, seen: make([]atomic.Int32, 4*ChunkElems)}
	Default().Run(4, op)
	after := PoolStats()
	if after.ParallelRuns != before.ParallelRuns {
		t.Fatalf("SetWorkers(1) run still went parallel")
	}
	if after.Runs != before.Runs+1 || after.Chunks != before.Chunks+4 {
		t.Fatalf("stats not advanced: %+v -> %+v", before, after)
	}
}

type nopOp struct{}

func (nopOp) RunChunk(int) {}

func TestPoolRunZeroAlloc(t *testing.T) {
	p := NewPool(2)
	op := &touchOp{n: 8 * ChunkElems, seen: make([]atomic.Int32, 8*ChunkElems)}
	// Warm up.
	p.Run(8, op)
	allocs := testing.AllocsPerRun(20, func() {
		p.Run(8, op)
	})
	if allocs != 0 {
		t.Fatalf("Pool.Run allocates %v per run, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(20, func() {
		p.Run(1, nopOp{})
	})
	if allocs != 0 {
		t.Fatalf("inline serial Run allocates %v per run, want 0", allocs)
	}
}

func TestLeaseReusesBuffers(t *testing.T) {
	var l Lease
	b := l.Bytes(1000)
	f := l.F32(2000)
	if len(b) != 1000 || len(f) != 2000 {
		t.Fatalf("lease sizes: %d, %d", len(b), len(f))
	}
	b[0], f[0] = 1, 1
	l.Release()

	if raceEnabled {
		t.Skip("sync.Pool bypasses caches under -race; alloc assertion only valid without it")
	}
	// Steady state: same classes should be pool hits and alloc-free.
	allocs := testing.AllocsPerRun(50, func() {
		bb := l.Bytes(1000)
		ff := l.F32(2000)
		bb[999] = 7
		ff[1999] = 7
		l.Release()
	})
	if allocs != 0 {
		t.Fatalf("steady-state lease cycle allocates %v, want 0", allocs)
	}
	st := DefaultArenaStats()
	if st.Gets == 0 || st.Hits == 0 {
		t.Fatalf("arena stats not advancing: %+v", st)
	}
}

func TestLeaseAdopt(t *testing.T) {
	var round, scratch Lease
	pre := round.Bytes(100) // already held by the destination
	a := scratch.Bytes(200)
	b := scratch.F32(300)
	round.Adopt(&scratch)
	if scratch.head != nil {
		t.Fatal("adopted lease not reset")
	}
	// The adopted buffers must still be writable (not returned to pools).
	pre[99], a[199], b[299] = 1, 2, 3
	// Releasing the destination must return all three: walk the intrusive
	// list before releasing to count what it holds.
	n := 0
	for w := round.head; w != nil; w = w.next {
		n++
	}
	if n != 3 {
		t.Fatalf("destination lease holds %d buffers after Adopt, want 3", n)
	}
	round.Release()
	if round.head != nil {
		t.Fatal("release did not empty the lease")
	}

	// Degenerate cases are no-ops, not corruption.
	var l, empty Lease
	x := l.Bytes(10)
	l.Adopt(nil)
	l.Adopt(&l)
	l.Adopt(&empty)
	n = 0
	for w := l.head; w != nil; w = w.next {
		n++
	}
	if n != 1 {
		t.Fatalf("degenerate Adopts changed the lease: %d buffers, want 1", n)
	}
	x[9] = 1
	l.Release()
}

func TestLeaseOversizeFallsThrough(t *testing.T) {
	var l Lease
	huge := 1<<maxClassBits + 1
	b := l.Bytes(huge)
	if len(b) != huge {
		t.Fatalf("oversize len = %d", len(b))
	}
	l.Release() // must not panic; wrapper recycles, backing dropped
	f := l.F32(huge / 4)
	if len(f) != huge/4 {
		t.Fatalf("oversize f32 len = %d", len(f))
	}
	l.Release()
}

func TestClassFor(t *testing.T) {
	if c := classFor(1); c != 0 || classSize(c) != 1<<minClassBits {
		t.Fatalf("classFor(1) = %d", c)
	}
	if c := classFor(1 << minClassBits); c != 0 {
		t.Fatalf("classFor(min) = %d", c)
	}
	if c := classFor(1<<minClassBits + 1); c != 1 {
		t.Fatalf("classFor(min+1) = %d", c)
	}
	if c := classFor(1 << maxClassBits); c != numClasses-1 {
		t.Fatalf("classFor(max) = %d, want %d", c, numClasses-1)
	}
	if c := classFor(1<<maxClassBits + 1); c != -1 {
		t.Fatalf("classFor(max+1) = %d, want -1", c)
	}
}

func TestSetTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	SetTelemetry(reg)
	defer SetTelemetry(nil)
	op := &touchOp{n: 2 * ChunkElems, seen: make([]atomic.Int32, 2*ChunkElems)}
	Default().Run(2, op)
	var l Lease
	_ = l.Bytes(64)
	l.Release()
	if v := reg.Counter("kernels_pool_runs_total", "").Value(); v < 1 {
		t.Fatalf("pool runs counter = %v", v)
	}
	if v := reg.Counter("kernels_arena_gets_total", "").Value(); v < 1 {
		t.Fatalf("arena gets counter = %v", v)
	}
}

func TestPoolParallelExecution(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("needs >1 proc to observe parallel run accounting")
	}
	p := NewPool(4)
	before := p.parallelRuns.Load()
	op := &touchOp{n: 8 * ChunkElems, seen: make([]atomic.Int32, 8*ChunkElems)}
	p.Run(8, op)
	if p.parallelRuns.Load() == before {
		t.Fatalf("expected a parallel run with GOMAXPROCS=%d", runtime.GOMAXPROCS(0))
	}
}
