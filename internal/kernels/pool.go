// Package kernels is the CPU-side kernel execution plane: a shared chunked
// worker pool plus size-classed buffer arenas that together let the
// compression kernels in internal/compress run multicore and allocation-free
// on the live CaSync hot path.
//
// The design mirrors what CompLL does for GPUs (emit highly parallel kernels
// over fixed-size tiles) translated to Go on CPUs:
//
//   - Work is split over *fixed* chunk boundaries (ChunkBytes = 128 KiB of
//     float32s). The chunk geometry depends only on the input length — never
//     on the worker count — so any per-chunk partial results (sums, counts,
//     histograms) combined in ascending chunk order reduce to *bit-identical*
//     output for 1, 2, or N workers. This is the determinism contract the
//     golden tests and the PR-3 checkpoint kill/resume bit-identity lean on.
//
//   - A single shared pool (Default) sized to runtime.GOMAXPROCS(0) serves
//     all kernels. Workers are persistent goroutines parked on a token
//     channel; each Run hands out chunk indices through an atomic counter
//     (work-stealing: fast workers drain more chunks). The calling goroutine
//     participates as worker zero, so a serial run (1 proc, or 1 chunk)
//     executes inline with zero scheduling overhead and zero allocations.
//
//   - Ops are pooled structs implementing the Op interface rather than
//     closures, so the steady-state Run path performs no heap allocation.
package kernels

import (
	"runtime"
	"sync"
	"sync/atomic"

	"hipress/internal/telemetry"
)

// ChunkBytes is the fixed chunk granularity of the execution plane.
// 128 KiB sits in the middle of the 64–256 KiB sweet spot: big enough that
// per-chunk dispatch overhead is negligible, small enough that a dozen
// workers load-balance even on few-MiB tensors.
const ChunkBytes = 128 << 10

// ChunkElems is the chunk granularity in float32 elements. It is a multiple
// of 8, so chunk boundaries always land on whole bytes of onebit sign bits
// and on whole bytes of TernGrad's little-endian bit packing — every chunk
// owns a disjoint byte range of the payload.
const ChunkElems = ChunkBytes / 4

// NumChunks returns the number of fixed-geometry chunks covering n elements.
// n==0 yields 0 chunks.
func NumChunks(n int) int {
	if n <= 0 {
		return 0
	}
	return (n + ChunkElems - 1) / ChunkElems
}

// ChunkRange returns the [lo, hi) element range of chunk c for a length-n
// input. The geometry is a pure function of (n, c): it never depends on how
// many workers execute the run.
func ChunkRange(n, c int) (lo, hi int) {
	lo = c * ChunkElems
	hi = lo + ChunkElems
	if hi > n {
		hi = n
	}
	return lo, hi
}

// Op is one chunked kernel launch. RunChunk must be safe to call from
// multiple goroutines for distinct chunk indices; each chunk must touch a
// disjoint region of any shared output.
type Op interface {
	RunChunk(c int)
}

// Pool is a chunked work-stealing worker pool. One Run executes at a time
// (Runs are serialized by an internal mutex); kernels are short, so queueing
// behind the mutex is cheaper and simpler than multiplexing runs.
type Pool struct {
	mu     sync.Mutex // serializes Run
	tokens chan struct{}
	cap    int // number of persistent workers

	// Per-run state, valid only while mu is held by a Run.
	op     Op
	chunks int
	next   atomic.Int64
	chunkW sync.WaitGroup // one Done per completed chunk
	idleW  sync.WaitGroup // one Done per detached worker

	limit atomic.Int64 // SetWorkers cap; <=0 means no limit

	runs         atomic.Int64
	parallelRuns atomic.Int64
	chunksDone   atomic.Int64

	met atomic.Pointer[poolMetrics]
}

type poolMetrics struct {
	runs     *telemetry.Counter
	parallel *telemetry.Counter
	chunks   *telemetry.Counter
	workers  *telemetry.Gauge
}

// NewPool builds a pool with n persistent workers (n<=0 ⇒ GOMAXPROCS(0)).
// The calling goroutine of each Run also executes chunks, so effective
// parallelism is min(n+?, …) as described on Run.
func NewPool(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		tokens: make(chan struct{}, n),
		cap:    n,
	}
	for i := 0; i < n; i++ {
		go p.worker()
	}
	return p
}

var defaultPool = NewPool(0)

// Default returns the shared process-wide pool used by the compress kernels.
func Default() *Pool { return defaultPool }

// SetWorkers caps the effective parallelism of subsequent Runs on the
// default pool (n<=0 removes the cap). It exists for benchmarks and the
// `kernels` experiment, which compare serial vs parallel execution of the
// *same* chunked code. Returns the previous cap.
func SetWorkers(n int) int {
	old := defaultPool.limit.Swap(int64(n))
	defaultPool.publishWorkers()
	return int(old)
}

// Workers reports the effective parallelism the default pool will use for a
// large run (before clamping by chunk count).
func Workers() int { return defaultPool.effective() }

func (p *Pool) effective() int {
	k := p.cap + 1 // persistent workers + the caller
	if g := runtime.GOMAXPROCS(0); k > g {
		k = g
	}
	if lim := int(p.limit.Load()); lim > 0 && k > lim {
		k = lim
	}
	if k < 1 {
		k = 1
	}
	return k
}

func (p *Pool) worker() {
	for range p.tokens {
		p.work()
		p.idleW.Done()
	}
}

// work drains chunk indices until the run is exhausted.
func (p *Pool) work() {
	op, chunks := p.op, p.chunks
	for {
		c := int(p.next.Add(1)) - 1
		if c >= chunks {
			return
		}
		op.RunChunk(c)
		p.chunkW.Done()
	}
}

// Run executes op over `chunks` chunks. Effective parallelism is
// min(workers+caller, GOMAXPROCS, SetWorkers limit, chunks); with
// parallelism 1 (or chunks<=1) the op runs inline on the caller with no
// synchronization at all. Run does not allocate.
func (p *Pool) Run(chunks int, op Op) {
	if chunks <= 0 {
		return
	}
	p.runs.Add(1)
	p.chunksDone.Add(int64(chunks))
	if m := p.met.Load(); m != nil {
		m.runs.Inc()
		m.chunks.Add(float64(chunks))
	}
	k := p.effective()
	if k > chunks {
		k = chunks
	}
	if k <= 1 {
		for c := 0; c < chunks; c++ {
			op.RunChunk(c)
		}
		return
	}
	p.parallelRuns.Add(1)
	if m := p.met.Load(); m != nil {
		m.parallel.Inc()
	}

	p.mu.Lock()
	p.op = op
	p.chunks = chunks
	p.next.Store(0)
	p.chunkW.Add(chunks)
	extra := k - 1 // workers woken in addition to the caller
	p.idleW.Add(extra)
	for i := 0; i < extra; i++ {
		p.tokens <- struct{}{} // happens-before: publishes op/chunks/next
	}
	p.work()        // caller participates
	p.chunkW.Wait() // all chunks complete
	p.idleW.Wait()  // all woken workers detached from run state
	p.op = nil
	p.mu.Unlock()
}

// Stats is a snapshot of pool activity.
type Stats struct {
	Runs         int64 // total Run calls
	ParallelRuns int64 // Runs that engaged >1 worker
	Chunks       int64 // total chunks executed
	Workers      int   // current effective parallelism
}

// PoolStats snapshots the default pool.
func PoolStats() Stats {
	p := defaultPool
	return Stats{
		Runs:         p.runs.Load(),
		ParallelRuns: p.parallelRuns.Load(),
		Chunks:       p.chunksDone.Load(),
		Workers:      p.effective(),
	}
}

// SetTelemetry registers kernel-plane counters (pool runs/chunks/occupancy,
// arena hit rate) on reg. Passing a registry whose methods return nil-safe
// no-op instruments is fine; passing nil unhooks. Used by core.NewLiveCluster
// when a telemetry registry is configured.
func SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		defaultPool.met.Store(nil)
		defaultArena.met.Store(nil)
		return
	}
	pm := &poolMetrics{
		runs:     reg.Counter("kernels_pool_runs_total", "total kernel pool runs"),
		parallel: reg.Counter("kernels_pool_parallel_runs_total", "kernel pool runs that engaged >1 worker"),
		chunks:   reg.Counter("kernels_pool_chunks_total", "total chunks executed by the kernel pool"),
		workers:  reg.Gauge("kernels_pool_workers", "effective kernel pool parallelism"),
	}
	defaultPool.met.Store(pm)
	defaultPool.publishWorkers()
	am := &arenaMetrics{
		gets: reg.Counter("kernels_arena_gets_total", "buffer arena checkout requests"),
		hits: reg.Counter("kernels_arena_hits_total", "buffer arena checkouts served from the pool"),
	}
	defaultArena.met.Store(am)
}

func (p *Pool) publishWorkers() {
	if m := p.met.Load(); m != nil {
		m.workers.Set(float64(p.effective()))
	}
}
