//go:build race

package kernels

// raceEnabled reports that the race detector is active. Under -race,
// sync.Pool intentionally bypasses its caches at random to expose races, so
// alloc-free assertions on pooled paths are skipped.
const raceEnabled = true
