package models

import (
	"encoding/json"
	"fmt"
	"io"
)

// JSON model specs let users simulate their own DNNs without recompiling:
// either list every gradient explicitly, or give Table 6-style statistics
// (total/max/count) and let the synthetic distribution fill in the layers.
//
// Explicit form:
//
//	{
//	  "name": "mymodel", "framework": "custom",
//	  "batch_per_gpu": 32, "sample_unit": "images", "v100_iter_sec": 0.12,
//	  "gradients": [{"name": "fc", "elems": 1048576}, ...]
//	}
//
// Statistical form replaces "gradients" with:
//
//	"total_mb": 420.0, "max_gradient_mb": 89.4, "num_gradients": 207

type jsonModel struct {
	Name        string  `json:"name"`
	Framework   string  `json:"framework,omitempty"`
	BatchPerGPU int     `json:"batch_per_gpu"`
	SampleUnit  string  `json:"sample_unit,omitempty"`
	V100IterSec float64 `json:"v100_iter_sec"`
	Algo        string  `json:"algo,omitempty"`

	Gradients []jsonGradient `json:"gradients,omitempty"`

	TotalMB      float64 `json:"total_mb,omitempty"`
	MaxMB        float64 `json:"max_gradient_mb,omitempty"`
	NumGradients int     `json:"num_gradients,omitempty"`
}

type jsonGradient struct {
	Name  string `json:"name"`
	Elems int    `json:"elems"`
}

// FromJSON reads one model spec.
func FromJSON(r io.Reader) (*Model, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var jm jsonModel
	if err := dec.Decode(&jm); err != nil {
		return nil, fmt.Errorf("models: parsing model JSON: %w", err)
	}
	if jm.Name == "" {
		return nil, fmt.Errorf("models: model spec needs a name")
	}
	if jm.BatchPerGPU < 1 {
		return nil, fmt.Errorf("models: %s: batch_per_gpu must be ≥ 1", jm.Name)
	}
	if jm.V100IterSec <= 0 {
		return nil, fmt.Errorf("models: %s: v100_iter_sec must be positive", jm.Name)
	}
	if jm.SampleUnit == "" {
		jm.SampleUnit = "samples"
	}
	m := &Model{
		Name:        jm.Name,
		Framework:   jm.Framework,
		BatchPerGPU: jm.BatchPerGPU,
		SampleUnit:  jm.SampleUnit,
		V100IterSec: jm.V100IterSec,
		Algo:        jm.Algo,
	}
	if len(jm.Gradients) > 0 {
		if jm.TotalMB != 0 || jm.MaxMB != 0 || jm.NumGradients != 0 {
			return nil, fmt.Errorf("models: %s: give either explicit gradients or statistics, not both", jm.Name)
		}
		grads := make([]Gradient, len(jm.Gradients))
		var total, maxB int64
		for i, g := range jm.Gradients {
			if g.Elems < 1 {
				return nil, fmt.Errorf("models: %s: gradient %q has %d elements", jm.Name, g.Name, g.Elems)
			}
			name := g.Name
			if name == "" {
				name = fmt.Sprintf("%s.layer%03d", jm.Name, i)
			}
			grads[i] = Gradient{Name: name, Elems: g.Elems}
			total += grads[i].Bytes()
			if grads[i].Bytes() > maxB {
				maxB = grads[i].Bytes()
			}
		}
		m.grads = grads
		m.TotalBytes = total
		m.MaxBytes = maxB
		m.NumGradients = len(grads)
		return m, nil
	}
	if jm.NumGradients < 1 || jm.TotalMB <= 0 || jm.MaxMB <= 0 {
		return nil, fmt.Errorf("models: %s: statistical spec needs total_mb, max_gradient_mb, num_gradients", jm.Name)
	}
	if jm.MaxMB > jm.TotalMB {
		return nil, fmt.Errorf("models: %s: max gradient exceeds total size", jm.Name)
	}
	m.TotalBytes = mb(jm.TotalMB)
	m.MaxBytes = mb(jm.MaxMB)
	m.NumGradients = jm.NumGradients
	return m, nil
}

// WriteJSON serializes the model with its explicit gradient list, so a
// synthesized model can be inspected, edited, and re-loaded.
func (m *Model) WriteJSON(w io.Writer) error {
	jm := jsonModel{
		Name:        m.Name,
		Framework:   m.Framework,
		BatchPerGPU: m.BatchPerGPU,
		SampleUnit:  m.SampleUnit,
		V100IterSec: m.V100IterSec,
		Algo:        m.Algo,
	}
	for _, g := range m.Gradients() {
		jm.Gradients = append(jm.Gradients, jsonGradient{Name: g.Name, Elems: g.Elems})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jm)
}
