// Package models is the DNN model zoo of the paper's Table 6: the eight
// trained models with their gradient statistics (total size, largest
// gradient, gradient count), batch sizes, and single-GPU iteration times.
//
// The evaluation never needs real weights — weak-scaling throughput is
// fully determined by (a) how long one GPU computes per iteration and (b)
// the sizes and emission order of the gradients the backward pass produces.
// Each model here synthesizes a deterministic per-gradient size distribution
// matching Table 6's totals exactly, and carries compute-time calibration
// for the two testbeds.
package models

import (
	"fmt"
	"math"
	"sort"
)

// Gradient is one named gradient tensor (a layer's parameters).
type Gradient struct {
	Name  string
	Elems int
}

// Bytes returns the fp32 size of the gradient.
func (g Gradient) Bytes() int64 { return int64(4 * g.Elems) }

// Model describes one Table 6 entry.
type Model struct {
	// Name as in Table 6.
	Name string
	// Framework the paper trains it on (MXNet/TensorFlow/PyTorch) — for
	// labels only; the engine is framework-agnostic.
	Framework string
	// TotalBytes, MaxBytes, NumGradients mirror Table 6 columns.
	TotalBytes   int64
	MaxBytes     int64
	NumGradients int
	// BatchPerGPU is the per-GPU batch size in Samples units.
	BatchPerGPU int
	// SampleUnit names what a sample is ("images", "sequences", "tokens").
	SampleUnit string
	// V100IterSec is the single-V100 fp32 time per iteration (forward +
	// backward), the quantity weak scaling normalizes against.
	V100IterSec float64
	// Algo is the compression algorithm the paper pairs with this model in
	// its end-to-end experiments.
	Algo string

	grads []Gradient // lazily built
}

// Zoo returns the eight models of Table 6. Values are the paper's, with
// compute times fitted from public fp32 V100 benchmarks of the era (the
// paper does not state absolute single-GPU times; only relative shapes
// matter for scaling efficiency).
func Zoo() []*Model {
	return []*Model{
		{
			Name: "vgg19", Framework: "MXNet", Algo: "onebit",
			TotalBytes: mb(548.05), MaxBytes: mb(392), NumGradients: 38,
			BatchPerGPU: 32, SampleUnit: "images", V100IterSec: 0.190,
		},
		{
			Name: "resnet50", Framework: "TensorFlow", Algo: "dgc",
			TotalBytes: mb(97.46), MaxBytes: mb(9), NumGradients: 155,
			BatchPerGPU: 32, SampleUnit: "images", V100IterSec: 0.095,
		},
		{
			Name: "ugatit", Framework: "PyTorch", Algo: "terngrad",
			TotalBytes: mb(2558.75), MaxBytes: mb(1024), NumGradients: 148,
			BatchPerGPU: 2, SampleUnit: "images", V100IterSec: 1.05,
		},
		{
			Name: "ugatit-light", Framework: "PyTorch", Algo: "terngrad",
			TotalBytes: mb(511.25), MaxBytes: mb(128), NumGradients: 148,
			BatchPerGPU: 2, SampleUnit: "images", V100IterSec: 0.36,
		},
		{
			Name: "bert-base", Framework: "MXNet", Algo: "onebit",
			TotalBytes: mb(420.02), MaxBytes: mb(89.42), NumGradients: 207,
			BatchPerGPU: 32, SampleUnit: "sequences", V100IterSec: 0.34,
		},
		{
			Name: "bert-large", Framework: "MXNet", Algo: "onebit",
			TotalBytes: mb(1282.60), MaxBytes: mb(119.23), NumGradients: 399,
			BatchPerGPU: 32, SampleUnit: "sequences", V100IterSec: 1.02,
		},
		{
			Name: "lstm", Framework: "PyTorch", Algo: "terngrad",
			TotalBytes: mb(327.97), MaxBytes: mb(190.42), NumGradients: 10,
			BatchPerGPU: 80, SampleUnit: "sequences", V100IterSec: 0.145,
		},
		{
			Name: "transformer", Framework: "TensorFlow", Algo: "dgc",
			TotalBytes: mb(234.08), MaxBytes: mb(65.84), NumGradients: 185,
			BatchPerGPU: 2048, SampleUnit: "tokens", V100IterSec: 0.105,
		},
	}
}

func mb(x float64) int64 { return int64(x * (1 << 20)) }

// ByName returns the named model from the zoo.
func ByName(name string) (*Model, error) {
	for _, m := range Zoo() {
		if m.Name == name {
			return m, nil
		}
	}
	return nil, fmt.Errorf("models: unknown model %q", name)
}

// Names lists zoo model names.
func Names() []string {
	var out []string
	for _, m := range Zoo() {
		out = append(out, m.Name)
	}
	return out
}

// Gradients returns the model's synthetic per-gradient size list, built
// deterministically so every run sees the same model. The construction
// places one gradient at MaxBytes, then fills the remainder with a geometric
// spread between ~1 KB and ~max/3 (matching real DNNs, where a few embedding
// or FC layers dominate and hundreds of bias/norm tensors are tiny),
// rescaled so the total matches Table 6 exactly.
//
// Gradients are returned in forward-pass order; the backward pass emits them
// reversed (output layer first), which is the order the engine's compute
// timeline uses.
func (m *Model) Gradients() []Gradient {
	if m.grads != nil {
		return m.grads
	}
	n := m.NumGradients
	sizes := make([]int64, n)
	sizes[n-1] = m.MaxBytes &^ 3 // the dominant tensor sits near the output
	if n > 1 {
		// Real DNNs pair every weight matrix with tiny bias/norm tensors:
		// most gradients by count are a few KB, while a handful carry the
		// mass (§6.3: 62.7% of Bert-base's gradients are below 16 KB).
		tinyFrac := 0.55
		switch {
		case m.NumGradients >= 200: // transformer-family: norm+bias heavy
			tinyFrac = 0.63
		case m.NumGradients <= 12: // lstm: few, mostly large tensors
			tinyFrac = 0.2
		}
		nTiny := int(tinyFrac * float64(n-1))
		nLarge := n - 1 - nTiny
		var assigned int64
		// Tiny gradients: 1-12 KB, varied deterministically.
		for i := 0; i < nTiny; i++ {
			sz := int64(1024 + (i*1412)%11264)
			sz &^= 3
			sizes[i] = sz
			assigned += sz
		}
		// Large gradients: geometric ramp over ~2.5 decades sharing the
		// remaining mass.
		remaining := m.TotalBytes - sizes[n-1] - assigned
		if nLarge > 0 {
			weights := make([]float64, nLarge)
			var wsum float64
			for i := range weights {
				weights[i] = pow(300, float64(i)/float64(max(1, nLarge-1)))
				wsum += weights[i]
			}
			var largeAssigned int64
			for i := range weights {
				sz := int64(float64(remaining) * weights[i] / wsum)
				sz &^= 3
				if sz < 4 {
					sz = 4
				}
				sizes[nTiny+i] = sz
				largeAssigned += sz
			}
			// Rounding slack lands on the last (largest) ramp gradient so
			// totals match Table 6 to fp32-element precision.
			slack := (remaining - largeAssigned) &^ 3
			sizes[nTiny+nLarge-1] += slack
			if sizes[nTiny+nLarge-1] < 4 {
				sizes[nTiny+nLarge-1] = 4
			}
		}
		// Interleave tiny and large so the backward pass mixes them the way
		// a real layer sequence does: a coprime-stride shuffle is a
		// deterministic permutation.
		stride := coprimeStride(n - 1)
		body := append([]int64(nil), sizes[:n-1]...)
		for i := range body {
			sizes[(i*stride)%(n-1)] = body[i]
		}
	}
	grads := make([]Gradient, n)
	for i, sz := range sizes {
		grads[i] = Gradient{Name: fmt.Sprintf("%s.layer%03d", m.Name, i), Elems: int(sz / 4)}
	}
	m.grads = grads
	return grads
}

// TotalElems returns the model's parameter count.
func (m *Model) TotalElems() int {
	var total int
	for _, g := range m.Gradients() {
		total += g.Elems
	}
	return total
}

// FractionBelow returns the fraction of gradients smaller than thr bytes —
// the statistic behind "62.7% of [Bert-base's] gradients are below 16KB"
// (§6.3).
func (m *Model) FractionBelow(thr int64) float64 {
	grads := m.Gradients()
	n := 0
	for _, g := range grads {
		if g.Bytes() < thr {
			n++
		}
	}
	return float64(n) / float64(len(grads))
}

// SizePercentiles returns the p-th percentile gradient sizes for diagnostics.
func (m *Model) SizePercentiles(ps ...float64) []int64 {
	grads := m.Gradients()
	sizes := make([]int64, len(grads))
	for i, g := range grads {
		sizes[i] = g.Bytes()
	}
	sort.Slice(sizes, func(i, j int) bool { return sizes[i] < sizes[j] })
	out := make([]int64, len(ps))
	for i, p := range ps {
		idx := int(p * float64(len(sizes)-1))
		out[i] = sizes[idx]
	}
	return out
}

func pow(base, exp float64) float64 { return math.Pow(base, exp) }

// coprimeStride returns a small stride coprime to n, so i → i*stride mod n
// is a permutation.
func coprimeStride(n int) int {
	for _, s := range []int{7, 11, 13, 17, 19, 23, 29, 31, 37} {
		if gcd(s, n) == 1 {
			return s
		}
	}
	return 1
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
