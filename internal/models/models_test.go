package models

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// TestTable6Exact pins every model's gradient statistics to Table 6.
func TestTable6Exact(t *testing.T) {
	want := []struct {
		name      string
		totalMB   float64
		maxMB     float64
		gradients int
	}{
		{"vgg19", 548.05, 392, 38},
		{"resnet50", 97.46, 9, 155},
		{"ugatit", 2558.75, 1024, 148},
		{"ugatit-light", 511.25, 128, 148},
		{"bert-base", 420.02, 89.42, 207},
		{"bert-large", 1282.60, 119.23, 399},
		{"lstm", 327.97, 190.42, 10},
		{"transformer", 234.08, 65.84, 185},
	}
	for _, w := range want {
		m, err := ByName(w.name)
		if err != nil {
			t.Fatal(err)
		}
		grads := m.Gradients()
		if len(grads) != w.gradients {
			t.Errorf("%s: %d gradients, want %d", w.name, len(grads), w.gradients)
		}
		var total, maxB int64
		for _, g := range grads {
			total += g.Bytes()
			if g.Bytes() > maxB {
				maxB = g.Bytes()
			}
		}
		// Totals match Table 6 to within fp32-element rounding.
		if math.Abs(float64(total)-w.totalMB*(1<<20)) > 16 {
			t.Errorf("%s: total %.3f MB, want %.2f MB", w.name, float64(total)/(1<<20), w.totalMB)
		}
		if math.Abs(float64(maxB)-w.maxMB*(1<<20)) > 16 {
			t.Errorf("%s: max gradient %.3f MB, want %.2f MB", w.name, float64(maxB)/(1<<20), w.maxMB)
		}
	}
}

func TestGradientsDeterministic(t *testing.T) {
	a, _ := ByName("bert-large")
	b, _ := ByName("bert-large")
	ga, gb := a.Gradients(), b.Gradients()
	for i := range ga {
		if ga[i] != gb[i] {
			t.Fatalf("gradient list not deterministic at %d", i)
		}
	}
	// Cached second call returns the same slice.
	if &a.Gradients()[0] != &ga[0] {
		t.Fatalf("Gradients not cached")
	}
}

func TestGradientsAllPositive(t *testing.T) {
	for _, m := range Zoo() {
		for _, g := range m.Gradients() {
			if g.Elems < 1 {
				t.Fatalf("%s: gradient %s has %d elements", m.Name, g.Name, g.Elems)
			}
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("alexnet"); err == nil {
		t.Fatalf("unknown model accepted")
	}
	if len(Names()) != 8 {
		t.Fatalf("zoo has %d models, want 8", len(Names()))
	}
}

// TestBertBaseSmallGradientFraction: §6.3 says 62.7% of Bert-base gradients
// are below 16 KB; our synthetic distribution must land in that regime for
// the SeCoPa ablation to reproduce.
func TestBertBaseSmallGradientFraction(t *testing.T) {
	m, _ := ByName("bert-base")
	frac := m.FractionBelow(16 << 10)
	if frac < 0.45 || frac > 0.80 {
		t.Errorf("bert-base fraction below 16KB = %.3f, want ~0.627", frac)
	}
}

func TestVGG19DominatedByLargestGradient(t *testing.T) {
	m, _ := ByName("vgg19")
	if frac := float64(m.MaxBytes) / float64(m.TotalBytes); frac < 0.6 {
		t.Errorf("vgg19 max/total = %.2f, the FC layer should dominate", frac)
	}
}

func TestTotalElems(t *testing.T) {
	m, _ := ByName("resnet50")
	want := int(m.TotalBytes / 4)
	if got := m.TotalElems(); got < want-8 || got > want+8 {
		t.Errorf("TotalElems = %d, want ~%d", got, want)
	}
}

func TestSizePercentilesMonotone(t *testing.T) {
	m, _ := ByName("transformer")
	ps := m.SizePercentiles(0, 0.5, 0.9, 1)
	for i := 1; i < len(ps); i++ {
		if ps[i] < ps[i-1] {
			t.Fatalf("percentiles not monotone: %v", ps)
		}
	}
	grads := m.Gradients()
	var maxB int64
	for _, g := range grads {
		if g.Bytes() > maxB {
			maxB = g.Bytes()
		}
	}
	if ps[3] != maxB {
		t.Fatalf("p100 = %d, want max %d", ps[3], maxB)
	}
}

func TestIterationTimesOrdering(t *testing.T) {
	// Sanity: heavier models take longer per iteration.
	get := func(name string) float64 {
		m, _ := ByName(name)
		return m.V100IterSec
	}
	if !(get("resnet50") < get("vgg19") && get("vgg19") < get("bert-large") && get("bert-base") < get("bert-large")) {
		t.Fatalf("iteration time ordering implausible")
	}
}

func TestFromJSONExplicit(t *testing.T) {
	src := `{"name":"tiny","batch_per_gpu":8,"v100_iter_sec":0.05,
	  "gradients":[{"name":"fc","elems":1000},{"elems":24}]}`
	m, err := FromJSON(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	grads := m.Gradients()
	if len(grads) != 2 || grads[0].Elems != 1000 {
		t.Fatalf("gradients = %+v", grads)
	}
	if grads[1].Name == "" {
		t.Fatalf("unnamed gradient not auto-named")
	}
	if m.TotalBytes != 4096 || m.MaxBytes != 4000 {
		t.Fatalf("stats = total %d max %d", m.TotalBytes, m.MaxBytes)
	}
	if m.SampleUnit != "samples" {
		t.Fatalf("default sample unit = %q", m.SampleUnit)
	}
}

func TestFromJSONStatistical(t *testing.T) {
	src := `{"name":"synth","batch_per_gpu":4,"v100_iter_sec":0.2,
	  "total_mb":100,"max_gradient_mb":40,"num_gradients":20}`
	m, err := FromJSON(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	grads := m.Gradients()
	if len(grads) != 20 {
		t.Fatalf("synthesized %d gradients", len(grads))
	}
	var total int64
	for _, g := range grads {
		total += g.Bytes()
	}
	if math.Abs(float64(total)-100*(1<<20)) > 32 {
		t.Fatalf("synthesized total = %d", total)
	}
}

func TestFromJSONValidation(t *testing.T) {
	cases := []string{
		`{"batch_per_gpu":8,"v100_iter_sec":0.05,"gradients":[{"elems":10}]}`,                                                               // no name
		`{"name":"x","v100_iter_sec":0.05,"gradients":[{"elems":10}]}`,                                                                      // no batch
		`{"name":"x","batch_per_gpu":8,"gradients":[{"elems":10}]}`,                                                                         // no iter time
		`{"name":"x","batch_per_gpu":8,"v100_iter_sec":0.05,"gradients":[{"elems":0}]}`,                                                     // empty gradient
		`{"name":"x","batch_per_gpu":8,"v100_iter_sec":0.05}`,                                                                               // neither form
		`{"name":"x","batch_per_gpu":8,"v100_iter_sec":0.05,"total_mb":10,"max_gradient_mb":20,"num_gradients":3}`,                          // max>total
		`{"name":"x","batch_per_gpu":8,"v100_iter_sec":0.05,"gradients":[{"elems":10}],"total_mb":5,"max_gradient_mb":1,"num_gradients":1}`, // both forms
		`{"name":"x","batch_per_gpu":8,"v100_iter_sec":0.05,"bogus_field":1,"gradients":[{"elems":10}]}`,                                    // unknown field
	}
	for i, src := range cases {
		if _, err := FromJSON(strings.NewReader(src)); err == nil {
			t.Errorf("case %d accepted: %s", i, src)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	m, _ := ByName("lstm")
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := FromJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// TotalBytes is recomputed from whole-element gradients, so fp32
	// rounding may shave a few bytes off the Table 6 headline number.
	if diff := back.TotalBytes - m.TotalBytes; diff < -8 || diff > 8 {
		t.Fatalf("round trip changed total: %d vs %d", back.TotalBytes, m.TotalBytes)
	}
	if back.NumGradients != m.NumGradients {
		t.Fatalf("round trip changed gradient count")
	}
	ga, gb := m.Gradients(), back.Gradients()
	for i := range ga {
		if ga[i] != gb[i] {
			t.Fatalf("round trip changed gradient %d", i)
		}
	}
}
