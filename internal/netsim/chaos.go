package netsim

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ChaosTransport is a fault-injection decorator around any Transport: it
// deterministically (seeded) drops, delays, duplicates, reorders, and
// corrupts messages, and can black out whole links or nodes. The live
// CaSync plane runs unchanged over it — chaos happens strictly between
// Send and the inner transport — which makes it the test harness for the
// deadline/retry/degradation machinery in core.LiveCluster.
//
// Determinism: every fault decision is a pure hash of
// (seed, fault-kind salt, From, To, Step, Attempt, Ack, Gradient). Two
// ChaosTransports built from the same ChaosConfig make identical decisions
// for identical messages regardless of goroutine interleaving, and a
// retransmission (higher Attempt) rolls a fresh outcome — so a lossy link
// is lossy per attempt, not per transfer, and retries eventually get
// through (unless the link is configured Down).

// Link addresses one directed (src → dst) edge of the transport mesh.
type Link struct{ Src, Dst int }

// LinkFaults configures the fault mix on one link (or the default mix for
// all links). Probabilities are in [0, 1] and evaluated independently.
type LinkFaults struct {
	// Drop is the probability a message silently disappears.
	Drop float64
	// Dup is the probability a message is delivered twice.
	Dup float64
	// Corrupt is the probability one payload byte is flipped in flight.
	Corrupt float64
	// Reorder is the probability a message is delayed by a small random
	// amount so a later message can overtake it (breaks FIFO).
	Reorder float64
	// Delay is the probability a message is delayed by a duration drawn
	// uniformly from [DelayMin, DelayMax].
	Delay              float64
	DelayMin, DelayMax time.Duration
	// Bandwidth, when > 0, caps the link's goodput in bytes per second:
	// each payload occupies the link for len(Payload)/Bandwidth seconds and
	// later messages on the same link queue FIFO behind it. Unlike the
	// probabilistic faults this is a congestion model, not a fault roll —
	// the induced delay is a pure function of payload size and link
	// occupancy, so a run with a deterministic send schedule sees a
	// deterministic queueing schedule. It is how experiments emulate a
	// mid-run fabric degradation (e.g. 100 Gbps → 10 Gbps).
	Bandwidth float64
	// Down blacks the link out entirely: every message is swallowed.
	Down bool
}

// ChaosConfig describes the full fault plane for one transport.
type ChaosConfig struct {
	// Seed drives all deterministic fault decisions.
	Seed uint64
	// Default applies to every link without an explicit entry in Links.
	Default LinkFaults
	// Links overrides the fault mix per directed (src, dst) pair.
	Links map[Link]LinkFaults
	// NodeDown blacks out every link touching the node (both directions):
	// the process-crash / NIC-dead failure mode.
	NodeDown map[int]bool
}

// faultsFor resolves the effective fault mix for a directed link.
func (c *ChaosConfig) faultsFor(from, to int) LinkFaults {
	lf, ok := c.Links[Link{Src: from, Dst: to}]
	if !ok {
		lf = c.Default
	}
	if c.NodeDown[from] || c.NodeDown[to] {
		lf.Down = true
	}
	return lf
}

// ChaosStats counts injected faults; all fields are updated atomically and
// readable while the transport is live.
type ChaosStats struct {
	Sent       int64 // messages offered to the chaos layer
	Delivered  int64 // messages handed to the inner transport (incl. dups)
	Dropped    int64 // messages swallowed by Drop probability
	Duplicated int64 // extra copies injected by Dup probability
	Corrupted  int64 // messages with a flipped payload byte
	Delayed    int64 // messages deferred by Delay or Reorder
	Blackholed int64 // messages swallowed by a Down link or node
}

// snapshot returns a consistent-enough copy for reporting.
func (s *ChaosStats) snapshot() ChaosStats {
	return ChaosStats{
		Sent:       atomic.LoadInt64(&s.Sent),
		Delivered:  atomic.LoadInt64(&s.Delivered),
		Dropped:    atomic.LoadInt64(&s.Dropped),
		Duplicated: atomic.LoadInt64(&s.Duplicated),
		Corrupted:  atomic.LoadInt64(&s.Corrupted),
		Delayed:    atomic.LoadInt64(&s.Delayed),
		Blackholed: atomic.LoadInt64(&s.Blackholed),
	}
}

// ChaosTransport decorates an inner Transport with fault injection.
type ChaosTransport struct {
	inner Transport
	cfg   ChaosConfig
	stats ChaosStats

	once sync.Once
	done chan struct{}
	wg   sync.WaitGroup

	// bwMu guards bwFree, the per-link time at which the serialized tail of
	// the last bandwidth-capped payload clears the link.
	bwMu   sync.Mutex
	bwFree map[Link]time.Time
}

// WrapChaos wraps inner with the given fault plane. cfg is copied; a nil
// cfg yields a transparent wrapper.
func WrapChaos(inner Transport, cfg *ChaosConfig) *ChaosTransport {
	t := &ChaosTransport{inner: inner, done: make(chan struct{}),
		bwFree: map[Link]time.Time{}}
	if cfg != nil {
		t.cfg = *cfg
	}
	return t
}

// Inner exposes the wrapped transport (tests, diagnostics).
func (t *ChaosTransport) Inner() Transport { return t.inner }

// Stats returns a snapshot of the fault counters.
func (t *ChaosTransport) Stats() ChaosStats { return t.stats.snapshot() }

// splitmix64 is the standard splitmix64 finalizer: a strong, cheap hash
// used to turn message identity into deterministic fault rolls.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Per-fault-kind salts keep the rolls for different fault types independent.
const (
	saltDrop uint64 = 0xd307_0001
	saltDup  uint64 = 0xd307_0002
	saltCorr uint64 = 0xd307_0003
	saltReor uint64 = 0xd307_0004
	saltDely uint64 = 0xd307_0005
	saltByte uint64 = 0xd307_0006
	saltDur  uint64 = 0xd307_0007
)

// hashMsg folds a message's identity (not its payload) into one 64-bit
// value. Gradient is mixed with an FNV-style loop so distinct names give
// distinct schedules.
func (t *ChaosTransport) hashMsg(salt uint64, msg Message) uint64 {
	h := splitmix64(t.cfg.Seed ^ salt)
	h = splitmix64(h ^ uint64(int64(msg.From))<<1 ^ uint64(int64(msg.To))<<17)
	h = splitmix64(h ^ uint64(int64(msg.Step)))
	h = splitmix64(h ^ uint64(int64(msg.Attempt))<<3)
	if msg.Ack {
		h = splitmix64(h ^ 0xacac_acac)
	}
	if msg.Heartbeat {
		h = splitmix64(h ^ 0xbeab_beab)
	}
	for i := 0; i < len(msg.Gradient); i++ {
		h = (h ^ uint64(msg.Gradient[i])) * 0x100000001b3
	}
	return splitmix64(h)
}

// roll converts a hash to a uniform float in [0, 1).
func roll(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// Send implements Transport, applying the configured fault mix.
func (t *ChaosTransport) Send(msg Message) error {
	select {
	case <-t.done:
		return fmt.Errorf("netsim: chaos transport closed")
	default:
	}
	atomic.AddInt64(&t.stats.Sent, 1)
	lf := t.cfg.faultsFor(msg.From, msg.To)

	if lf.Down {
		atomic.AddInt64(&t.stats.Blackholed, 1)
		return nil // swallowed: looks like success to the sender
	}
	if lf.Drop > 0 && roll(t.hashMsg(saltDrop, msg)) < lf.Drop {
		atomic.AddInt64(&t.stats.Dropped, 1)
		return nil
	}
	if lf.Corrupt > 0 && len(msg.Payload) > 0 && roll(t.hashMsg(saltCorr, msg)) < lf.Corrupt {
		p := append([]byte(nil), msg.Payload...)
		idx := int(t.hashMsg(saltByte, msg) % uint64(len(p)))
		p[idx] ^= 0x5a
		msg.Payload = p
		atomic.AddInt64(&t.stats.Corrupted, 1)
	}

	dup := lf.Dup > 0 && roll(t.hashMsg(saltDup, msg)) < lf.Dup

	var delay time.Duration
	if lf.Delay > 0 && roll(t.hashMsg(saltDely, msg)) < lf.Delay {
		span := lf.DelayMax - lf.DelayMin
		if span < 0 {
			span = 0
		}
		delay = lf.DelayMin
		if span > 0 {
			delay += time.Duration(t.hashMsg(saltDur, msg) % uint64(span))
		}
	}
	if delay == 0 && lf.Reorder > 0 && roll(t.hashMsg(saltReor, msg)) < lf.Reorder {
		// A short deterministic delay is enough to let a later message on
		// the same link overtake this one.
		delay = time.Duration(1+t.hashMsg(saltDur, msg)%4) * time.Millisecond
	}

	if lf.Bandwidth > 0 && len(msg.Payload) > 0 {
		// Serialize the payload onto the link: it occupies the pipe for
		// size/bandwidth, queued FIFO behind whatever is already in flight.
		ser := time.Duration(float64(len(msg.Payload)) / lf.Bandwidth * float64(time.Second))
		l := Link{Src: msg.From, Dst: msg.To}
		now := time.Now() //hipress:wallclock bandwidth-pipe occupancy is real-time by design
		t.bwMu.Lock()
		free := t.bwFree[l]
		if free.Before(now) {
			free = now
		}
		free = free.Add(ser)
		t.bwFree[l] = free
		t.bwMu.Unlock()
		if wait := free.Sub(now); wait > delay {
			delay = wait
		}
	}

	if delay > 0 {
		atomic.AddInt64(&t.stats.Delayed, 1)
		t.wg.Add(1)
		go func(m Message, d time.Duration, dup bool) {
			defer t.wg.Done()
			timer := time.NewTimer(d)
			defer timer.Stop()
			select {
			case <-t.done:
				return
			case <-timer.C:
			}
			t.deliver(m, dup)
		}(msg, delay, dup)
		return nil
	}
	t.deliver(msg, dup)
	return nil
}

// deliver hands the message (and an optional duplicate) to the inner
// transport, ignoring inner errors on the async path (the transport may
// have closed while the message was in flight — that is a legal fault).
func (t *ChaosTransport) deliver(msg Message, dup bool) {
	if err := t.inner.Send(msg); err == nil {
		atomic.AddInt64(&t.stats.Delivered, 1)
	}
	if dup {
		if err := t.inner.Send(msg); err == nil {
			atomic.AddInt64(&t.stats.Delivered, 1)
			atomic.AddInt64(&t.stats.Duplicated, 1)
		}
	}
}

// Recv implements Transport by delegating to the inner transport.
func (t *ChaosTransport) Recv(node int) (Message, bool) { return t.inner.Recv(node) }

// Close implements Transport: idempotent, waits for in-flight delayed
// deliveries to resolve, then closes the inner transport.
func (t *ChaosTransport) Close() {
	t.once.Do(func() {
		close(t.done)
		t.wg.Wait()
		t.inner.Close()
	})
}
