package netsim

import (
	"fmt"
	"testing"
	"time"
)

// runChaosScript pushes a fixed single-threaded message script through a
// freshly wrapped chaos transport and returns the delivered sequence plus
// the fault stats. No delay/reorder faults may be configured by callers of
// this helper — synchronous delivery keeps the received order deterministic.
func runChaosScript(t *testing.T, cfg *ChaosConfig, n, msgs int) ([]Message, ChaosStats) {
	t.Helper()
	inner := NewChanTransport(n, n*msgs*2+8)
	ct := WrapChaos(inner, cfg)
	defer ct.Close()
	for step := 0; step < msgs; step++ {
		for src := 0; src < n; src++ {
			dst := (src + 1 + step%(n-1)) % n
			msg := Message{From: src, To: dst, Gradient: fmt.Sprintf("g%d", src%3),
				Step: step, Payload: []byte{byte(src), byte(step), 0x42}}
			if err := ct.Send(msg); err != nil {
				t.Fatalf("send: %v", err)
			}
		}
	}
	var out []Message
	for node := 0; node < n; node++ {
		for {
			select {
			case m := <-inner.inboxes[node]:
				out = append(out, m)
			default:
				goto next
			}
		}
	next:
	}
	return out, ct.Stats()
}

// TestChaosDeterminism: the same seed and script must produce the identical
// fault schedule — same delivered messages, same corrupted bytes, same
// counters — across independent transports.
func TestChaosDeterminism(t *testing.T) {
	cfg := &ChaosConfig{
		Seed:    7,
		Default: LinkFaults{Drop: 0.2, Dup: 0.15, Corrupt: 0.1},
		Links: map[Link]LinkFaults{
			{Src: 0, Dst: 1}: {Drop: 0.6, Dup: 0.3},
		},
	}
	a, sa := runChaosScript(t, cfg, 4, 40)
	b, sb := runChaosScript(t, cfg, 4, 40)
	if sa != sb {
		t.Fatalf("stats diverged:\n%+v\n%+v", sa, sb)
	}
	if sa.Dropped == 0 || sa.Duplicated == 0 || sa.Corrupted == 0 {
		t.Fatalf("expected all fault kinds to fire: %+v", sa)
	}
	if len(a) != len(b) {
		t.Fatalf("delivered counts diverged: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].From != b[i].From || a[i].To != b[i].To || a[i].Step != b[i].Step ||
			a[i].Gradient != b[i].Gradient || string(a[i].Payload) != string(b[i].Payload) {
			t.Fatalf("delivery %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
	// A different seed must produce a different schedule.
	cfg2 := *cfg
	cfg2.Seed = 8
	c, sc := runChaosScript(t, &cfg2, 4, 40)
	if sc == sa && len(c) == len(a) {
		same := true
		for i := range a {
			if string(a[i].Payload) != string(c[i].Payload) || a[i].Step != c[i].Step {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical schedules")
		}
	}
}

// TestChaosAttemptRollsFresh: a retransmission (higher Attempt) must roll a
// fresh outcome, so a lossy-but-not-down link eventually delivers.
func TestChaosAttemptRollsFresh(t *testing.T) {
	inner := NewChanTransport(2, 64)
	ct := WrapChaos(inner, &ChaosConfig{Seed: 3, Default: LinkFaults{Drop: 0.7}})
	defer ct.Close()
	delivered := false
	for attempt := 0; attempt < 64 && !delivered; attempt++ {
		msg := Message{From: 0, To: 1, Gradient: "g", Step: 5, Attempt: attempt, Payload: []byte{1}}
		if err := ct.Send(msg); err != nil {
			t.Fatal(err)
		}
		select {
		case <-inner.inboxes[1]:
			delivered = true
		default:
		}
	}
	if !delivered {
		t.Fatal("64 attempts over a 70 percent drop link never delivered; attempt not mixed into roll?")
	}
}

// TestChaosBlackouts: Down links and NodeDown swallow everything while the
// sender still sees success (the realistic failure surface).
func TestChaosBlackouts(t *testing.T) {
	inner := NewChanTransport(3, 16)
	ct := WrapChaos(inner, &ChaosConfig{
		Seed:     1,
		Links:    map[Link]LinkFaults{{Src: 0, Dst: 1}: {Down: true}},
		NodeDown: map[int]bool{2: true},
	})
	defer ct.Close()
	for _, m := range []Message{
		{From: 0, To: 1, Gradient: "a", Payload: []byte{1}}, // link down
		{From: 1, To: 2, Gradient: "b", Payload: []byte{2}}, // dst node down
		{From: 2, To: 0, Gradient: "c", Payload: []byte{3}}, // src node down
		{From: 1, To: 0, Gradient: "d", Payload: []byte{4}}, // healthy
	} {
		if err := ct.Send(m); err != nil {
			t.Fatalf("send %+v: %v", m, err)
		}
	}
	st := ct.Stats()
	if st.Blackholed != 3 || st.Delivered != 1 {
		t.Fatalf("blackhole accounting wrong: %+v", st)
	}
	m, ok := ct.Recv(0)
	if !ok || m.Gradient != "d" {
		t.Fatalf("healthy message lost: %+v ok=%v", m, ok)
	}
}

// TestChaosDelayDelivers: delayed messages still arrive (after Close waits
// for them or before), and the delay counter fires.
func TestChaosDelayDelivers(t *testing.T) {
	inner := NewChanTransport(2, 16)
	ct := WrapChaos(inner, &ChaosConfig{Seed: 9,
		Default: LinkFaults{Delay: 1.0, DelayMin: time.Millisecond, DelayMax: 5 * time.Millisecond}})
	for i := 0; i < 4; i++ {
		if err := ct.Send(Message{From: 0, To: 1, Gradient: "g", Step: i, Payload: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	got := 0
	deadline := time.After(5 * time.Second)
	for got < 4 {
		select {
		case <-inner.inboxes[1]:
			got++
		case <-deadline:
			t.Fatalf("only %d/4 delayed messages arrived", got)
		}
	}
	st := ct.Stats()
	if st.Delayed != 4 {
		t.Fatalf("Delayed = %d, want 4", st.Delayed)
	}
	ct.Close()
	ct.Close() // idempotent
}

// TestChaosTransparent: a nil config injects nothing.
func TestChaosTransparent(t *testing.T) {
	inner := NewChanTransport(2, 8)
	ct := WrapChaos(inner, nil)
	defer ct.Close()
	for i := 0; i < 5; i++ {
		if err := ct.Send(Message{From: 0, To: 1, Step: i, Payload: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		m, ok := ct.Recv(1)
		if !ok || m.Step != i {
			t.Fatalf("transparent wrapper reordered/lost: %+v ok=%v", m, ok)
		}
	}
	st := ct.Stats()
	if st.Sent != 5 || st.Delivered != 5 || st.Dropped+st.Corrupted+st.Duplicated+st.Blackholed != 0 {
		t.Fatalf("transparent stats wrong: %+v", st)
	}
}

// TestChaosBandwidthSerializes: a bandwidth-capped link delays payloads by
// their serialization time, queues back-to-back sends FIFO, and still
// delivers everything; an uncapped link is unaffected.
func TestChaosBandwidthSerializes(t *testing.T) {
	inner := NewChanTransport(2, 16)
	ct := WrapChaos(inner, &ChaosConfig{
		Links: map[Link]LinkFaults{
			{Src: 0, Dst: 1}: {Bandwidth: 1 << 20}, // 1 MiB/s
		},
	})
	defer ct.Close()

	// Two 100 ms payloads back to back: the second queues behind the first,
	// so total drain time is ~200 ms.
	payload := make([]byte, 100<<10) // 100 KiB at 1 MiB/s ≈ 98 ms
	start := time.Now()
	for step := 0; step < 2; step++ {
		if err := ct.Send(Message{From: 0, To: 1, Gradient: "g", Step: step, Payload: payload}); err != nil {
			t.Fatal(err)
		}
	}
	for got := 0; got < 2; got++ {
		if _, ok := ct.Recv(1); !ok {
			t.Fatal("capped link lost a message")
		}
	}
	elapsed := time.Since(start)
	if elapsed < 150*time.Millisecond {
		t.Fatalf("two serialized 98 ms payloads drained in %v — no queueing", elapsed)
	}
	st := ct.Stats()
	if st.Delayed != 2 {
		t.Fatalf("Delayed = %d, want 2 (both payloads serialized)", st.Delayed)
	}

	// The reverse (uncapped) direction delivers immediately.
	start = time.Now()
	if err := ct.Send(Message{From: 1, To: 0, Gradient: "g", Payload: payload}); err != nil {
		t.Fatal(err)
	}
	if _, ok := ct.Recv(0); !ok {
		t.Fatal("uncapped link lost a message")
	}
	if e := time.Since(start); e > 50*time.Millisecond {
		t.Fatalf("uncapped link took %v", e)
	}
}
