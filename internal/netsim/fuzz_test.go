package netsim

import (
	"bytes"
	"testing"
)

// FuzzFrameDecode drives decodeFrame — the TCP transport's wire-format
// parser, the first code that touches bytes off the network — with arbitrary
// frame bodies. The contract under fuzzing:
//
//  1. decodeFrame never panics, whatever the bytes (the read loop feeds it
//     attacker-shaped data whenever chaos corrupts a stream);
//  2. any frame it accepts round-trips: re-encoding the decoded Message
//     reproduces the input bytes exactly, so decode is a true inverse of
//     encodeFrame and no accepted frame is ambiguous.
func FuzzFrameDecode(f *testing.F) {
	// Well-formed seeds: a data frame, an ack, a negative From (int32
	// casts), an empty-everything frame — plus malformed ones (empty,
	// truncated header, bad flags, gradient length past the body).
	seeds := []Message{
		{From: 1, To: 2, Gradient: "layer3.weight/p2", Step: 7, Attempt: 1,
			Sum: 0xdeadbeef, Payload: []byte{1, 2, 3, 4}},
		{From: 2, To: 1, Gradient: "layer3.weight/p2", Step: 7, Attempt: 3, Ack: true},
		{From: 0, To: 3, Gradient: "hb", Step: 123456789, Attempt: 12, Heartbeat: true},
		{From: 3, To: 0, Gradient: "hb", Step: 123456789, Attempt: 12, Ack: true, Heartbeat: true},
		{From: -1, To: 0, Gradient: "", Step: -9, Attempt: 0, Payload: []byte("x")},
		{},
	}
	for _, m := range seeds {
		f.Add(encodeFrame(m)[4:]) // strip the u32 length prefix
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, frameHdrLen-1))
	bad := encodeFrame(seeds[0])[4:]
	bad[22] = 0x80 // unknown flag bit
	f.Add(bad)
	short := encodeFrame(seeds[0])[4:]
	short[23] = 0xff // gradient length larger than the body
	short[24] = 0xff
	f.Add(short)

	f.Fuzz(func(t *testing.T, frame []byte) {
		msg, err := decodeFrame(frame)
		if err != nil {
			return // rejected is fine; not panicking is the point
		}
		re := encodeFrame(msg)[4:]
		if !bytes.Equal(re, frame) {
			t.Fatalf("accepted frame does not round-trip:\n in: %x\nout: %x", frame, re)
		}
		msg2, err := decodeFrame(re)
		if err != nil {
			t.Fatalf("re-encoded frame rejected: %v", err)
		}
		if msg2.From != msg.From || msg2.To != msg.To || msg2.Gradient != msg.Gradient ||
			msg2.Step != msg.Step || msg2.Attempt != msg.Attempt || msg2.Ack != msg.Ack ||
			msg2.Heartbeat != msg.Heartbeat ||
			msg2.Sum != msg.Sum || !bytes.Equal(msg2.Payload, msg.Payload) {
			t.Fatalf("decode not deterministic: %+v vs %+v", msg, msg2)
		}
	})
}
