package netsim

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"slices"
	"testing"
)

// FuzzFrameDecode drives decodeFrame — the TCP transport's wire-format
// parser, the first code that touches bytes off the network — with arbitrary
// frame bodies. The contract under fuzzing:
//
//  1. decodeFrame never panics, whatever the bytes (the read loop feeds it
//     attacker-shaped data whenever chaos corrupts a stream);
//  2. any frame it accepts round-trips: re-encoding the decoded Message
//     under the decoded generation reproduces the input bytes exactly, so
//     decode is a true inverse of encodeFrame and no accepted frame is
//     ambiguous.
func FuzzFrameDecode(f *testing.F) {
	// Well-formed seeds: a data frame, an ack, a negative From (int32
	// casts), an empty-everything frame — plus malformed ones (empty,
	// truncated header, bad version, bad flags, gradient length past the
	// body).
	seeds := []struct {
		msg Message
		gen uint32
	}{
		{Message{From: 1, To: 2, Gradient: "layer3.weight/p2", Step: 7, Attempt: 1,
			Sum: 0xdeadbeef, Payload: []byte{1, 2, 3, 4}}, 1},
		{Message{From: 2, To: 1, Gradient: "layer3.weight/p2", Step: 7, Attempt: 3, Ack: true}, 2},
		{Message{From: 0, To: 3, Gradient: "hb", Step: 123456789, Attempt: 12, Heartbeat: true}, 3},
		{Message{From: 3, To: 0, Gradient: "hb", Step: 123456789, Attempt: 12, Ack: true, Heartbeat: true}, 0xffffffff},
		{Message{From: -1, To: 0, Gradient: "", Step: -9, Attempt: 0, Payload: []byte("x")}, 9},
		{Message{From: 2, To: 1, Ack: true, Step: 5, Attempt: 2, AckBatch: []AckRef{
			{Gradient: "g/p0", Step: 7, Attempt: 1}, {Gradient: "g/p1", Step: 9}}}, 4},
		{Message{}, 0},
	}
	for _, s := range seeds {
		f.Add(encodeFrame(s.msg, s.gen)[4:]) // strip the u32 length prefix
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, frameHdrLen-1))
	// restamp recomputes the body's frame checksum so mangled seeds reach
	// their specific validator instead of the blanket corruption check.
	restamp := func(body []byte) []byte {
		binary.LittleEndian.PutUint32(body[0:], crc32.ChecksumIEEE(body[4:]))
		return body
	}
	v1 := encodeFrame(seeds[0].msg, 1)[4:]
	v1[4] = 1 // wrong wire-format version
	f.Add(restamp(v1))
	bad := encodeFrame(seeds[0].msg, 1)[4:]
	bad[31] = 0x80 // unknown flag bit
	f.Add(restamp(bad))
	short := encodeFrame(seeds[0].msg, 1)[4:]
	short[32] = 0xff // gradient length larger than the body
	short[33] = 0xff
	f.Add(restamp(short))
	flip := encodeFrame(seeds[0].msg, 1)[4:]
	flip[21] ^= 0x20 // in-header bit flip: must fail the frame checksum
	f.Add(flip)

	f.Fuzz(func(t *testing.T, frame []byte) {
		msg, gen, err := decodeFrame(frame)
		if err != nil {
			return // rejected is fine; not panicking is the point
		}
		re := encodeFrame(msg, gen)[4:]
		if !bytes.Equal(re, frame) {
			t.Fatalf("accepted frame does not round-trip:\n in: %x\nout: %x", frame, re)
		}
		msg2, gen2, err := decodeFrame(re)
		if err != nil {
			t.Fatalf("re-encoded frame rejected: %v", err)
		}
		if gen2 != gen {
			t.Fatalf("generation not deterministic: %d vs %d", gen, gen2)
		}
		if msg2.From != msg.From || msg2.To != msg.To || msg2.Gradient != msg.Gradient ||
			msg2.Step != msg.Step || msg2.Attempt != msg.Attempt || msg2.Ack != msg.Ack ||
			msg2.Heartbeat != msg.Heartbeat ||
			msg2.Sum != msg.Sum || !bytes.Equal(msg2.Payload, msg.Payload) ||
			!slices.Equal(msg2.AckBatch, msg.AckBatch) {
			t.Fatalf("decode not deterministic: %+v vs %+v", msg, msg2)
		}
	})
}

// FuzzHelloDecode fuzzes the handshake parser with arbitrary bytes: never
// panic, and any accepted HELLO must round-trip through encodeHello.
func FuzzHelloDecode(f *testing.F) {
	f.Add(encodeHello(0, 1))
	f.Add(encodeHello(1023, 0xffffffff))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, helloLen))
	zero := encodeHello(1, 1)
	zero[9], zero[10], zero[11], zero[12] = 0, 0, 0, 0 // generation 0
	f.Add(zero)

	f.Fuzz(func(t *testing.T, b []byte) {
		src, gen, err := decodeHello(b)
		if err != nil {
			return
		}
		if src < 0 || gen == 0 {
			t.Fatalf("accepted hello with src=%d gen=%d", src, gen)
		}
		if !bytes.Equal(encodeHello(src, gen), b) {
			t.Fatalf("accepted hello does not round-trip: %x", b)
		}
	})
}
