// Package netsim models the paper's interconnects (100/25 Gbps EC2, 56/10
// Gbps local InfiniBand) and provides the live in-memory transport used by
// the real-execution training plane.
//
// The timing side is a classic α–β model: sending m bytes over a link takes
// Latency + m/Bandwidth seconds, with full-duplex links (independent uplink
// and downlink capacity), matching how the paper counts communication steps
// (§2.2: "each worker simultaneously sends a partition to its successor and
// receives another partition from its predecessor, to best utilize its
// bi-directional network bandwidth").
package netsim

import (
	"fmt"
	"sync"
)

// Gbps converts a link rate in gigabits/second to effective bytes/second.
// The factor 0.92 accounts for protocol framing and the gap between line
// rate and achievable goodput on a tuned RDMA fabric.
func Gbps(g float64) float64 { return g * 1e9 / 8 * 0.92 }

// Fabric describes a homogeneous cluster interconnect.
type Fabric struct {
	Name string
	// Bandwidth is per-direction effective bytes/second of one node's NIC.
	Bandwidth float64
	// Latency is the one-way small-message latency in seconds.
	Latency float64
}

// SendTime returns T_send(m): the modeled time to move m bytes across one
// link of the fabric (paper Table 2's T_send).
func (f *Fabric) SendTime(m int64) float64 {
	return f.Latency + float64(m)/f.Bandwidth
}

// EC2100G is the paper's primary fabric: 100 Gbps EC2 networking with EFA.
func EC2100G() *Fabric { return &Fabric{Name: "ec2-100g", Bandwidth: Gbps(100), Latency: 20e-6} }

// EC225G is the reduced-bandwidth EC2 configuration of Fig. 12a.
func EC225G() *Fabric { return &Fabric{Name: "ec2-25g", Bandwidth: Gbps(25), Latency: 25e-6} }

// IB56G is the local cluster's 56 Gbps InfiniBand fabric.
func IB56G() *Fabric { return &Fabric{Name: "ib-56g", Bandwidth: Gbps(56), Latency: 5e-6} }

// Eth10G is the local cluster's reduced 10 Gbps configuration of Fig. 12a.
func Eth10G() *Fabric { return &Fabric{Name: "eth-10g", Bandwidth: Gbps(10), Latency: 30e-6} }

// ByName resolves a preset fabric name.
func ByName(name string) (*Fabric, error) {
	switch name {
	case "ec2-100g":
		return EC2100G(), nil
	case "ec2-25g":
		return EC225G(), nil
	case "ib-56g":
		return IB56G(), nil
	case "eth-10g":
		return Eth10G(), nil
	default:
		return nil, fmt.Errorf("netsim: unknown fabric %q", name)
	}
}

// --- live transport -----------------------------------------------------------

// Message is one unit of live communication: a payload tagged with enough
// metadata for the receiver's task manager to route it.
type Message struct {
	From, To int
	// Gradient names the gradient (or gradient partition) this payload
	// belongs to, e.g. "layer3.weight/p2".
	Gradient string
	// Step disambiguates multiple transfers of the same gradient within one
	// synchronization round (e.g. ring hop number).
	Step int
	// Attempt is the sender's retry counter for this logical transfer.
	// Retransmissions of the same (Gradient, Step) carry increasing Attempt
	// values so fault injectors can roll fresh outcomes per attempt and
	// receivers can deduplicate idempotently.
	Attempt int
	// Ack marks a zero-payload acknowledgement for the transfer identified by
	// (Gradient, Step, Attempt) flowing receiver→sender in reliable mode.
	Ack bool
	// Heartbeat marks a zero-payload liveness probe (or, with Ack set, its
	// echo) from the adaptive health plane: Step carries the probe's send
	// timestamp so the echo yields an RTT sample, and receivers handle it
	// outside the dedup/recv machinery.
	Heartbeat bool
	// Sum is the CRC-32 (IEEE) checksum of Payload, set by reliable senders
	// so receivers can detect in-flight corruption.
	Sum uint32
	// Payload is the (possibly compressed) bytes on the wire.
	Payload []byte
	// AckBatch, when non-empty, turns the message into a coalesced
	// acknowledgement: one frame settling several transfers on the same
	// directed link, each identified by its own (Gradient, Step) key. The
	// pipelined live plane's per-link ack workers emit these under backlog
	// to cut ack-path frame count; Gradient/Step/Attempt on the message
	// itself are then free for a per-link sequence number. On the TCP
	// transport the batch is carried in the payload region under a
	// dedicated frame flag.
	AckBatch []AckRef
}

// AckRef identifies one transfer inside a batched acknowledgement, mirroring
// the (Gradient, Step, Attempt) triple a standalone ack frame carries.
type AckRef struct {
	Gradient string
	Step     int
	Attempt  int
}

// Transport is the live-plane communication substrate: reliable, ordered
// per-sender delivery, addressed by dense node ids [0, N).
type Transport interface {
	// Send delivers msg to msg.To. It blocks only if the destination's
	// inbox is full (providing natural backpressure) and returns an error
	// if the transport is closed or the address invalid.
	Send(msg Message) error
	// Recv returns the next message addressed to node. It blocks until a
	// message arrives or the transport closes, in which case ok is false.
	Recv(node int) (msg Message, ok bool)
	// Close shuts the transport down and unblocks all receivers.
	Close()
}

// ChanTransport is an in-memory Transport built on buffered channels: the
// live-plane stand-in for NCCL/MPI point-to-point primitives. One channel
// per destination preserves per-destination FIFO order from each sender's
// perspective (sufficient for CaSync, which tags messages with step ids).
type ChanTransport struct {
	inboxes []chan Message
	once    sync.Once
	done    chan struct{}
}

// NewChanTransport creates a transport connecting n nodes with the given
// per-node inbox capacity.
func NewChanTransport(n, capacity int) *ChanTransport {
	t := &ChanTransport{
		inboxes: make([]chan Message, n),
		done:    make(chan struct{}),
	}
	for i := range t.inboxes {
		t.inboxes[i] = make(chan Message, capacity)
	}
	return t
}

// Nodes returns the number of endpoints.
func (t *ChanTransport) Nodes() int { return len(t.inboxes) }

// Send implements Transport.
func (t *ChanTransport) Send(msg Message) error {
	if msg.To < 0 || msg.To >= len(t.inboxes) {
		return fmt.Errorf("netsim: send to invalid node %d (have %d)", msg.To, len(t.inboxes))
	}
	// Check for shutdown before attempting the send: when both the done
	// channel and the inbox are ready, select would pick randomly and could
	// accept a message after Close.
	select {
	case <-t.done:
		return fmt.Errorf("netsim: transport closed")
	default:
	}
	select {
	case <-t.done:
		return fmt.Errorf("netsim: transport closed")
	case t.inboxes[msg.To] <- msg:
		return nil
	}
}

// Recv implements Transport.
func (t *ChanTransport) Recv(node int) (Message, bool) {
	if node < 0 || node >= len(t.inboxes) {
		return Message{}, false
	}
	select {
	case <-t.done:
		// Drain any messages that raced with Close so shutdown is clean.
		select {
		case m := <-t.inboxes[node]:
			return m, true
		default:
			return Message{}, false
		}
	case m := <-t.inboxes[node]:
		return m, true
	}
}

// Close implements Transport. It is safe to call multiple times.
func (t *ChanTransport) Close() {
	t.once.Do(func() { close(t.done) })
}
