package netsim

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestGbps(t *testing.T) {
	// 100 Gbps → 12.5 GB/s line rate × 0.92 efficiency.
	if got, want := Gbps(100), 11.5e9; got != want {
		t.Fatalf("Gbps(100) = %v, want %v", got, want)
	}
}

func TestSendTimeComponents(t *testing.T) {
	f := EC2100G()
	if got := f.SendTime(0); got != f.Latency {
		t.Fatalf("SendTime(0) = %v, want latency %v", got, f.Latency)
	}
	// 1 GB over 100 Gbps ≈ 87 ms plus latency.
	oneGB := f.SendTime(1 << 30)
	if oneGB < 0.08 || oneGB > 0.11 {
		t.Fatalf("SendTime(1GB) = %v, want ~0.093s", oneGB)
	}
}

func TestFabricOrdering(t *testing.T) {
	m := int64(64 << 20)
	t100, t56, t25, t10 := EC2100G().SendTime(m), IB56G().SendTime(m), EC225G().SendTime(m), Eth10G().SendTime(m)
	if !(t100 < t56 && t56 < t25 && t25 < t10) {
		t.Fatalf("fabric speed ordering broken: %v %v %v %v", t100, t56, t25, t10)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"ec2-100g", "ec2-25g", "ib-56g", "eth-10g"} {
		f, err := ByName(name)
		if err != nil || f.Name != name {
			t.Fatalf("ByName(%q) = %v, %v", name, f, err)
		}
	}
	if _, err := ByName("carrier-pigeon"); err == nil {
		t.Fatalf("unknown fabric accepted")
	}
}

func TestChanTransportRoundTrip(t *testing.T) {
	tr := NewChanTransport(3, 4)
	defer tr.Close()
	if tr.Nodes() != 3 {
		t.Fatalf("Nodes() = %d", tr.Nodes())
	}
	want := Message{From: 0, To: 2, Gradient: "g/p0", Step: 1, Payload: []byte{1, 2, 3}}
	if err := tr.Send(want); err != nil {
		t.Fatal(err)
	}
	got, ok := tr.Recv(2)
	if !ok || got.Gradient != want.Gradient || got.Step != 1 || string(got.Payload) != string(want.Payload) {
		t.Fatalf("Recv = %+v, %v", got, ok)
	}
}

func TestChanTransportInvalidAddress(t *testing.T) {
	tr := NewChanTransport(2, 1)
	defer tr.Close()
	if err := tr.Send(Message{To: 5}); err == nil {
		t.Fatalf("send to invalid node accepted")
	}
	if _, ok := tr.Recv(-1); ok {
		t.Fatalf("recv on invalid node returned ok")
	}
}

func TestChanTransportFIFOPerSender(t *testing.T) {
	tr := NewChanTransport(2, 16)
	defer tr.Close()
	for i := 0; i < 10; i++ {
		if err := tr.Send(Message{From: 0, To: 1, Step: i}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		m, ok := tr.Recv(1)
		if !ok || m.Step != i {
			t.Fatalf("message %d arrived out of order: %+v ok=%v", i, m, ok)
		}
	}
}

func TestChanTransportCloseUnblocksReceivers(t *testing.T) {
	tr := NewChanTransport(1, 1)
	done := make(chan struct{})
	go func() {
		_, ok := tr.Recv(0)
		if ok {
			t.Errorf("Recv returned ok after close with empty inbox")
		}
		close(done)
	}()
	tr.Close()
	<-done
	// Double close must be safe.
	tr.Close()
	if err := tr.Send(Message{To: 0}); err == nil {
		t.Fatalf("send after close accepted")
	}
}

func TestChanTransportConcurrentAllToAll(t *testing.T) {
	const n, per = 8, 50
	tr := NewChanTransport(n, n*per)
	defer tr.Close()
	var wg sync.WaitGroup
	for src := 0; src < n; src++ {
		wg.Add(1)
		go func(src int) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				for dst := 0; dst < n; dst++ {
					if err := tr.Send(Message{From: src, To: dst, Step: k}); err != nil {
						t.Errorf("send: %v", err)
						return
					}
				}
			}
		}(src)
	}
	counts := make([]int, n)
	var rg sync.WaitGroup
	for node := 0; node < n; node++ {
		rg.Add(1)
		go func(node int) {
			defer rg.Done()
			for i := 0; i < n*per; i++ {
				if _, ok := tr.Recv(node); !ok {
					t.Errorf("node %d: transport closed early", node)
					return
				}
				counts[node]++
			}
		}(node)
	}
	wg.Wait()
	rg.Wait()
	for node, c := range counts {
		if c != n*per {
			t.Fatalf("node %d received %d messages, want %d", node, c, n*per)
		}
	}
}

// Property: SendTime is affine and monotone in m for every preset fabric.
func TestQuickSendTimeMonotone(t *testing.T) {
	fabrics := []*Fabric{EC2100G(), EC225G(), IB56G(), Eth10G()}
	f := func(aRaw, bRaw uint32, fi uint8) bool {
		fab := fabrics[int(fi)%len(fabrics)]
		a, b := int64(aRaw), int64(bRaw)
		if a > b {
			a, b = b, a
		}
		return fab.SendTime(a) <= fab.SendTime(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
