package netsim

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// frameHdrLen is the fixed frame header length after the u32 length prefix.
const frameHdrLen = 4 + 4 + 8 + 4 + 2 + 1 + 2 // from, to, step, sum, attempt, flags, gradLen

// defaultWriteTimeout bounds how long Send blocks on a stalled peer before
// surfacing a net.Error timeout instead of wedging the caller's goroutine.
const defaultWriteTimeout = 5 * time.Second

// TCPTransport implements Transport over real loopback TCP sockets: each
// node owns a listener, connections are dialed lazily per (src, dst) pair,
// and messages travel as length-prefixed frames. It is the
// closest-to-production live substrate — the same CaSync task graphs that
// run over channels run unchanged over genuine sockets (see
// core.LiveConfig.Transport).
//
// Frame layout (little-endian):
//
//	u32 frameLen | u32 from | u32 to | u64 step | u32 sum | u16 attempt |
//	u8 flags (bit0 = Ack, bit1 = Heartbeat) | u16 gradLen | grad | payload
//
// Sends carry a write deadline (SetWriteTimeout): a peer that stops
// draining its socket causes Send to return a net.Error with
// Timeout() == true rather than blocking forever, and the wedged
// connection is dropped so the next Send redials.
type TCPTransport struct {
	listeners []net.Listener
	inboxes   []chan Message

	mu    sync.Mutex
	conns map[[2]int]net.Conn // (src,dst) → connection, lazily dialed
	wmu   map[[2]int]*sync.Mutex

	writeTimeout  int64 // nanoseconds, atomic
	corruptFrames int64 // frames rejected by decodeFrame, atomic

	once sync.Once
	done chan struct{}
	wg   sync.WaitGroup
}

// NewTCPTransport starts listeners for n nodes on loopback and returns the
// connected transport. Callers must Close it to release sockets.
func NewTCPTransport(n, capacity int) (*TCPTransport, error) {
	t := &TCPTransport{
		listeners:    make([]net.Listener, n),
		inboxes:      make([]chan Message, n),
		conns:        map[[2]int]net.Conn{},
		wmu:          map[[2]int]*sync.Mutex{},
		writeTimeout: int64(defaultWriteTimeout),
		done:         make(chan struct{}),
	}
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("netsim: listen for node %d: %w", i, err)
		}
		t.listeners[i] = l
		t.inboxes[i] = make(chan Message, capacity)
		t.wg.Add(1)
		go t.acceptLoop(i, l)
	}
	return t, nil
}

// Nodes returns the endpoint count.
func (t *TCPTransport) Nodes() int { return len(t.listeners) }

// Addr returns node i's listen address (tests and diagnostics).
func (t *TCPTransport) Addr(i int) net.Addr { return t.listeners[i].Addr() }

// SetWriteTimeout bounds how long one Send may block writing to a stalled
// peer. Zero or negative disables the deadline (not recommended).
func (t *TCPTransport) SetWriteTimeout(d time.Duration) {
	atomic.StoreInt64(&t.writeTimeout, int64(d))
}

// CorruptFrames reports how many inbound frames failed validation and were
// discarded (the connection is dropped alongside).
func (t *TCPTransport) CorruptFrames() int64 { return atomic.LoadInt64(&t.corruptFrames) }

func (t *TCPTransport) acceptLoop(node int, l net.Listener) {
	defer t.wg.Done()
	for {
		conn, err := l.Accept()
		if err != nil {
			return // listener closed
		}
		t.wg.Add(1)
		go t.readLoop(node, conn)
	}
}

func (t *TCPTransport) readLoop(node int, conn net.Conn) {
	defer t.wg.Done()
	defer conn.Close()
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return
		}
		frameLen := binary.LittleEndian.Uint32(hdr[:])
		if frameLen < frameHdrLen || frameLen > 1<<30 {
			atomic.AddInt64(&t.corruptFrames, 1)
			return // corrupt frame; drop the connection
		}
		frame := make([]byte, frameLen)
		if _, err := io.ReadFull(conn, frame); err != nil {
			return
		}
		msg, err := decodeFrame(frame)
		if err != nil {
			atomic.AddInt64(&t.corruptFrames, 1)
			return
		}
		select {
		case <-t.done:
			return
		case t.inboxes[node] <- msg:
		}
	}
}

func encodeFrame(msg Message) []byte {
	grad := []byte(msg.Gradient)
	frameLen := frameHdrLen + len(grad) + len(msg.Payload)
	out := make([]byte, 4+frameLen)
	binary.LittleEndian.PutUint32(out[0:], uint32(frameLen))
	binary.LittleEndian.PutUint32(out[4:], uint32(int32(msg.From)))
	binary.LittleEndian.PutUint32(out[8:], uint32(int32(msg.To)))
	binary.LittleEndian.PutUint64(out[12:], uint64(int64(msg.Step)))
	binary.LittleEndian.PutUint32(out[20:], msg.Sum)
	binary.LittleEndian.PutUint16(out[24:], uint16(msg.Attempt))
	if msg.Ack {
		out[26] |= 1
	}
	if msg.Heartbeat {
		out[26] |= 2
	}
	binary.LittleEndian.PutUint16(out[27:], uint16(len(grad)))
	copy(out[29:], grad)
	copy(out[29+len(grad):], msg.Payload)
	return out
}

// decodeFrame validates and decodes one frame body (without the u32 length
// prefix). Truncated or inconsistent frames yield a descriptive error so
// chaos-corrupted wire bytes fail loudly instead of decoding garbage.
func decodeFrame(frame []byte) (Message, error) {
	if len(frame) < frameHdrLen {
		return Message{}, fmt.Errorf("netsim: truncated frame: %d bytes < %d-byte header", len(frame), frameHdrLen)
	}
	from := int(int32(binary.LittleEndian.Uint32(frame[0:])))
	to := int(int32(binary.LittleEndian.Uint32(frame[4:])))
	step := int(int64(binary.LittleEndian.Uint64(frame[8:])))
	sum := binary.LittleEndian.Uint32(frame[16:])
	attempt := int(binary.LittleEndian.Uint16(frame[20:]))
	flags := frame[22]
	if flags&^3 != 0 {
		return Message{}, fmt.Errorf("netsim: frame with unknown flags 0x%02x", flags)
	}
	gradLen := int(binary.LittleEndian.Uint16(frame[23:]))
	if frameHdrLen+gradLen > len(frame) {
		return Message{}, fmt.Errorf("netsim: frame gradient length %d exceeds frame body %d",
			gradLen, len(frame)-frameHdrLen)
	}
	grad := string(frame[frameHdrLen : frameHdrLen+gradLen])
	payload := append([]byte(nil), frame[frameHdrLen+gradLen:]...)
	return Message{From: from, To: to, Gradient: grad, Step: step,
		Attempt: attempt, Ack: flags&1 != 0, Heartbeat: flags&2 != 0,
		Sum: sum, Payload: payload}, nil
}

// Send implements Transport. A stalled peer (not draining its socket)
// causes Send to fail with a net.Error timeout after the configured write
// timeout; the connection is dropped so a later Send redials cleanly.
func (t *TCPTransport) Send(msg Message) error {
	select {
	case <-t.done:
		return fmt.Errorf("netsim: tcp transport closed")
	default:
	}
	if msg.To < 0 || msg.To >= len(t.listeners) {
		return fmt.Errorf("netsim: tcp send to invalid node %d", msg.To)
	}
	conn, lock, err := t.connTo(msg.From, msg.To)
	if err != nil {
		return err
	}
	frame := encodeFrame(msg)
	lock.Lock()
	defer lock.Unlock()
	if d := time.Duration(atomic.LoadInt64(&t.writeTimeout)); d > 0 {
		conn.SetWriteDeadline(time.Now().Add(d))
	}
	if _, err := conn.Write(frame); err != nil {
		// The stream may hold a partial frame now: drop the connection so
		// the peer's readLoop resets and the next Send redials.
		t.dropConn(msg.From, msg.To, conn)
		var nerr net.Error
		if isNetTimeout(err, &nerr) {
			return fmt.Errorf("netsim: tcp send %d→%d timed out (peer stalled): %w", msg.From, msg.To, nerr)
		}
		return fmt.Errorf("netsim: tcp send %d→%d: %w", msg.From, msg.To, err)
	}
	return nil
}

// isNetTimeout reports whether err is (or wraps) a net.Error timeout,
// storing the net.Error into *out.
func isNetTimeout(err error, out *net.Error) bool {
	for e := err; e != nil; {
		if ne, ok := e.(net.Error); ok && ne.Timeout() {
			*out = ne
			return true
		}
		u, ok := e.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		e = u.Unwrap()
	}
	return false
}

// connTo returns (dialing if needed) the connection for a sender/receiver
// pair plus its write lock (frames must not interleave).
func (t *TCPTransport) connTo(from, to int) (net.Conn, *sync.Mutex, error) {
	key := [2]int{from, to}
	t.mu.Lock()
	defer t.mu.Unlock()
	select {
	case <-t.done:
		return nil, nil, fmt.Errorf("netsim: tcp transport closed")
	default:
	}
	if c, ok := t.conns[key]; ok {
		return c, t.wmu[key], nil
	}
	c, err := net.Dial("tcp", t.listeners[to].Addr().String())
	if err != nil {
		return nil, nil, fmt.Errorf("netsim: tcp dial %d→%d: %w", from, to, err)
	}
	t.conns[key] = c
	if t.wmu[key] == nil {
		t.wmu[key] = &sync.Mutex{}
	}
	return c, t.wmu[key], nil
}

// dropConn removes a failed connection from the pool (if it is still the
// registered one) and closes it.
func (t *TCPTransport) dropConn(from, to int, conn net.Conn) {
	key := [2]int{from, to}
	t.mu.Lock()
	if t.conns[key] == conn {
		delete(t.conns, key)
	}
	t.mu.Unlock()
	conn.Close()
}

// Recv implements Transport.
func (t *TCPTransport) Recv(node int) (Message, bool) {
	if node < 0 || node >= len(t.inboxes) {
		return Message{}, false
	}
	select {
	case <-t.done:
		select {
		case m := <-t.inboxes[node]:
			return m, true
		default:
			return Message{}, false
		}
	case m := <-t.inboxes[node]:
		return m, true
	}
}

// Close implements Transport: shuts listeners and connections down and
// unblocks receivers. Idempotent and safe to race with in-flight Sends —
// closing the sockets forces any blocked Write to return an error rather
// than waiting for it.
func (t *TCPTransport) Close() {
	t.once.Do(func() {
		close(t.done)
		for _, l := range t.listeners {
			if l != nil {
				l.Close()
			}
		}
		t.mu.Lock()
		for _, c := range t.conns {
			c.Close()
		}
		t.conns = map[[2]int]net.Conn{}
		t.mu.Unlock()
		t.wg.Wait()
	})
}
