package netsim

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
)

// TCPTransport implements Transport over real loopback TCP sockets: each
// node owns a listener, connections are dialed lazily per (src, dst) pair,
// and messages travel as length-prefixed frames. It is the
// closest-to-production live substrate — the same CaSync task graphs that
// run over channels run unchanged over genuine sockets (see
// core.LiveConfig.Transport).
//
// Frame layout (little-endian):
//
//	u32 frameLen | i32 from | i32 to | i64 step | u16 gradLen | grad | payload
type TCPTransport struct {
	listeners []net.Listener
	inboxes   []chan Message

	mu    sync.Mutex
	conns map[[2]int]net.Conn // (src,dst) → connection, lazily dialed
	wmu   map[[2]int]*sync.Mutex

	once sync.Once
	done chan struct{}
	wg   sync.WaitGroup
}

// NewTCPTransport starts listeners for n nodes on loopback and returns the
// connected transport. Callers must Close it to release sockets.
func NewTCPTransport(n, capacity int) (*TCPTransport, error) {
	t := &TCPTransport{
		listeners: make([]net.Listener, n),
		inboxes:   make([]chan Message, n),
		conns:     map[[2]int]net.Conn{},
		wmu:       map[[2]int]*sync.Mutex{},
		done:      make(chan struct{}),
	}
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("netsim: listen for node %d: %w", i, err)
		}
		t.listeners[i] = l
		t.inboxes[i] = make(chan Message, capacity)
		t.wg.Add(1)
		go t.acceptLoop(i, l)
	}
	return t, nil
}

// Nodes returns the endpoint count.
func (t *TCPTransport) Nodes() int { return len(t.listeners) }

// Addr returns node i's listen address (tests and diagnostics).
func (t *TCPTransport) Addr(i int) net.Addr { return t.listeners[i].Addr() }

func (t *TCPTransport) acceptLoop(node int, l net.Listener) {
	defer t.wg.Done()
	for {
		conn, err := l.Accept()
		if err != nil {
			return // listener closed
		}
		t.wg.Add(1)
		go t.readLoop(node, conn)
	}
}

func (t *TCPTransport) readLoop(node int, conn net.Conn) {
	defer t.wg.Done()
	defer conn.Close()
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return
		}
		frameLen := binary.LittleEndian.Uint32(hdr[:])
		if frameLen < 18 || frameLen > 1<<30 {
			return // corrupt frame; drop the connection
		}
		frame := make([]byte, frameLen)
		if _, err := io.ReadFull(conn, frame); err != nil {
			return
		}
		msg, ok := decodeFrame(frame)
		if !ok {
			return
		}
		select {
		case <-t.done:
			return
		case t.inboxes[node] <- msg:
		}
	}
}

func encodeFrame(msg Message) []byte {
	grad := []byte(msg.Gradient)
	frameLen := 4 + 4 + 8 + 2 + len(grad) + len(msg.Payload)
	out := make([]byte, 4+frameLen)
	binary.LittleEndian.PutUint32(out[0:], uint32(frameLen))
	binary.LittleEndian.PutUint32(out[4:], uint32(int32(msg.From)))
	binary.LittleEndian.PutUint32(out[8:], uint32(int32(msg.To)))
	binary.LittleEndian.PutUint64(out[12:], uint64(int64(msg.Step)))
	binary.LittleEndian.PutUint16(out[20:], uint16(len(grad)))
	copy(out[22:], grad)
	copy(out[22+len(grad):], msg.Payload)
	return out
}

func decodeFrame(frame []byte) (Message, bool) {
	if len(frame) < 18 {
		return Message{}, false
	}
	from := int(int32(binary.LittleEndian.Uint32(frame[0:])))
	to := int(int32(binary.LittleEndian.Uint32(frame[4:])))
	step := int(int64(binary.LittleEndian.Uint64(frame[8:])))
	gradLen := int(binary.LittleEndian.Uint16(frame[16:]))
	if 18+gradLen > len(frame) {
		return Message{}, false
	}
	grad := string(frame[18 : 18+gradLen])
	payload := append([]byte(nil), frame[18+gradLen:]...)
	return Message{From: from, To: to, Gradient: grad, Step: step, Payload: payload}, true
}

// Send implements Transport.
func (t *TCPTransport) Send(msg Message) error {
	select {
	case <-t.done:
		return fmt.Errorf("netsim: tcp transport closed")
	default:
	}
	if msg.To < 0 || msg.To >= len(t.listeners) {
		return fmt.Errorf("netsim: tcp send to invalid node %d", msg.To)
	}
	conn, lock, err := t.connTo(msg.From, msg.To)
	if err != nil {
		return err
	}
	frame := encodeFrame(msg)
	lock.Lock()
	defer lock.Unlock()
	if _, err := conn.Write(frame); err != nil {
		return fmt.Errorf("netsim: tcp send %d→%d: %w", msg.From, msg.To, err)
	}
	return nil
}

// connTo returns (dialing if needed) the connection for a sender/receiver
// pair plus its write lock (frames must not interleave).
func (t *TCPTransport) connTo(from, to int) (net.Conn, *sync.Mutex, error) {
	key := [2]int{from, to}
	t.mu.Lock()
	defer t.mu.Unlock()
	if c, ok := t.conns[key]; ok {
		return c, t.wmu[key], nil
	}
	c, err := net.Dial("tcp", t.listeners[to].Addr().String())
	if err != nil {
		return nil, nil, fmt.Errorf("netsim: tcp dial %d→%d: %w", from, to, err)
	}
	t.conns[key] = c
	t.wmu[key] = &sync.Mutex{}
	return c, t.wmu[key], nil
}

// Recv implements Transport.
func (t *TCPTransport) Recv(node int) (Message, bool) {
	if node < 0 || node >= len(t.inboxes) {
		return Message{}, false
	}
	select {
	case <-t.done:
		select {
		case m := <-t.inboxes[node]:
			return m, true
		default:
			return Message{}, false
		}
	case m := <-t.inboxes[node]:
		return m, true
	}
}

// Close implements Transport: shuts listeners and connections down and
// unblocks receivers. Safe to call multiple times.
func (t *TCPTransport) Close() {
	t.once.Do(func() {
		close(t.done)
		for _, l := range t.listeners {
			if l != nil {
				l.Close()
			}
		}
		t.mu.Lock()
		for _, c := range t.conns {
			c.Close()
		}
		t.mu.Unlock()
		t.wg.Wait()
	})
}
