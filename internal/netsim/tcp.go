package netsim

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"hipress/internal/telemetry"
)

// This file is the socket plane: the production-grade connection-lifecycle
// layer that runs the same CaSync task graphs over genuine loopback TCP.
// Unlike the original transport patch, connections here carry an explicit
// session generation negotiated by a tiny HELLO handshake, so any mid-frame
// failure (a write timeout after a partial frame, a wire-chaos cut, a
// half-open peer) is recovered by redialing with a fresh generation: the
// receiver discards the broken stream at a clean frame boundary and resyncs
// onto the new one, rejecting stale-generation frames outright.
//
// Frame format v2 (little-endian), after the u32 length prefix:
//
//	u32 fsum | u8 version (=2) | u32 gen | u32 from | u32 to | u64 step |
//	u32 sum | u16 attempt | u8 flags (bit0 = Ack, bit1 = Heartbeat,
//	bit2 = AckBatch) | u16 gradLen | grad | payload
//
// With bit2 set the payload region carries a batched acknowledgement
// instead of gradient bytes:
//
//	u16 count | count × (u64 step | u16 attempt | u16 gradLen | grad)
//
// The encoding is canonical (count ≥ 1, no trailing bytes), so an accepted
// batch frame round-trips exactly like every other frame. fsum covers the
// batch like any body byte: a wire-corrupted batch is dropped whole, the
// unacknowledged senders retransmit, and the receiver's dedup path re-acks
// — the same recovery as a lost standalone ack.
//
// fsum is a CRC-32 (IEEE) over every body byte after itself. The live
// plane's own checksum (sum) only covers the payload, so without fsum a
// wire-corrupted header field (from/to/step/gradient name) would decode as
// a structurally valid message with the wrong routing or dedup key — worst
// case silently merging one peer's bytes under another's slot. With fsum
// any in-frame bit flip is rejected here, the frame never reaches the live
// plane, and the reliable layer's retransmission repairs the loss.
//
// Every dialed connection opens with a 13-byte HELLO:
//
//	u32 magic "HPS2" | u8 version (=2) | u32 src | u32 gen
//
// The receiver accepts the stream only when gen strictly exceeds the last
// generation seen on that directed link; an accepted supersession of a
// previously-seen generation counts as one resync.

// frameVersion is the wire-format version carried by both the HELLO and
// every frame; a mismatch drops the connection before any allocation.
const frameVersion = 2

// frameHdrLen is the fixed v2 frame header length after the u32 length
// prefix: fsum, version, gen, from, to, step, sum, attempt, flags, gradLen.
const frameHdrLen = 4 + 1 + 4 + 4 + 4 + 8 + 4 + 2 + 1 + 2

// helloMagic spells "HPS2" when the HELLO's first four bytes are read
// little-endian.
const helloMagic uint32 = 'H' | 'P'<<8 | 'S'<<16 | '2'<<24

// helloLen is the handshake length: magic, version, src, gen.
const helloLen = 4 + 1 + 4 + 4

// Socket-plane defaults. MaxFrameLen caps a frame's claimed length before
// any allocation: a corrupt length prefix must not reserve gigabytes.
const (
	defaultMaxFrameLen      = 64 << 20 // 64 MiB
	defaultWriteTimeout     = 5 * time.Second
	defaultDialTimeout      = 2 * time.Second
	defaultHandshakeTimeout = 5 * time.Second
	defaultIdleReadTimeout  = 30 * time.Second
	defaultRedialAttempts   = 2
	defaultRedialBackoff    = 2 * time.Millisecond
	defaultRedialMaxBackoff = 50 * time.Millisecond
	defaultRedialSeed       = 0x9e3779b97f4a7c15
	closeDrainTimeout       = 250 * time.Millisecond
)

// corruptFrameTolerance is how many CONSECUTIVE undecodable frame bodies a
// stream survives before it is declared desynced and killed. A lone in-body
// bit flip leaves the length-prefix framing intact: dropping just that frame
// lets the reliable layer retransmit on the same connection (past a chaos
// injector's corrupt window), where killing the stream would redial into a
// fresh corrupt window and livelock. A genuinely desynced stream (corrupted
// length prefix that still parsed as plausible) produces garbage frame after
// garbage frame and trips the tolerance immediately.
const corruptFrameTolerance = 2

// Socket-plane metric family names (registered through TCPOptions.Metrics).
const (
	MetricTCPDials            = "hipress_tcp_dials_total"
	MetricTCPRedials          = "hipress_tcp_redials_total"
	MetricTCPResyncs          = "hipress_tcp_resyncs_total"
	MetricTCPCorruptFrames    = "hipress_tcp_corrupt_frames_total"
	MetricTCPDroppedFrames    = "hipress_tcp_dropped_frames_total"
	MetricTCPStaleConns       = "hipress_tcp_stale_conns_total"
	MetricTCPIdleDrops        = "hipress_tcp_idle_drops_total"
	MetricTCPAcceptDrops      = "hipress_tcp_accept_drops_total"
	MetricTCPHandshakeRejects = "hipress_tcp_handshake_rejects_total"
	MetricTCPActiveConns      = "hipress_tcp_active_conns"
	MetricTCPHandshakeSeconds = "hipress_tcp_handshake_seconds"
)

// TCPOptions tunes the socket plane's connection lifecycle. The zero value
// takes the defaults above; NewTCPTransport uses it unchanged.
type TCPOptions struct {
	// MaxFrameLen rejects any frame whose length prefix claims more than
	// this many bytes, before allocating (default 64 MiB).
	MaxFrameLen int
	// DialTimeout bounds one connection attempt (default 2s).
	DialTimeout time.Duration
	// WriteTimeout bounds one frame write against a stalled peer
	// (default 5s; see also SetWriteTimeout).
	WriteTimeout time.Duration
	// HandshakeTimeout bounds how long an accepted connection may sit
	// without delivering its HELLO (default 5s).
	HandshakeTimeout time.Duration
	// IdleReadTimeout kills a half-open connection: a peer that holds the
	// socket open but never sends another frame is dropped after this much
	// read silence (default 30s; negative disables).
	IdleReadTimeout time.Duration
	// RedialAttempts is how many fresh-generation redial+retransmit cycles
	// one Send performs after a write failure before surfacing a typed
	// *ConnError (default 2; negative disables redialing).
	RedialAttempts int
	// RedialBackoff / RedialMaxBackoff shape the capped-exponential wait
	// between redial cycles; each wait is drawn full-jitter from (0, d]
	// with the splitmix64 stream seeded by RedialSeed, so concurrent
	// senders against one recovering peer desynchronize deterministically
	// per seed (defaults 2ms / 50ms).
	RedialBackoff    time.Duration
	RedialMaxBackoff time.Duration
	RedialSeed       uint64
	// Chaos, when non-nil, wraps every dialed connection in the wire-level
	// fault injector (wirechaos.go): deterministic mid-stream cuts, byte
	// corruption, stalls, one-way partitions, accept-time blackouts.
	Chaos *WireChaosConfig
	// Metrics, when non-nil, publishes the transport's lifecycle counters
	// (redials, resyncs, corrupt/dropped frames, active connections, a
	// handshake latency histogram). Nil disables them at zero cost.
	Metrics *telemetry.Registry
}

// withDefaults fills zero fields.
func (o TCPOptions) withDefaults() TCPOptions {
	if o.MaxFrameLen <= 0 {
		o.MaxFrameLen = defaultMaxFrameLen
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = defaultDialTimeout
	}
	if o.WriteTimeout == 0 {
		o.WriteTimeout = defaultWriteTimeout
	}
	if o.HandshakeTimeout <= 0 {
		o.HandshakeTimeout = defaultHandshakeTimeout
	}
	if o.IdleReadTimeout == 0 {
		o.IdleReadTimeout = defaultIdleReadTimeout
	}
	if o.RedialAttempts == 0 {
		o.RedialAttempts = defaultRedialAttempts
	}
	if o.RedialAttempts < 0 {
		o.RedialAttempts = 0
	}
	if o.RedialBackoff <= 0 {
		o.RedialBackoff = defaultRedialBackoff
	}
	if o.RedialMaxBackoff <= 0 {
		o.RedialMaxBackoff = defaultRedialMaxBackoff
	}
	if o.RedialSeed == 0 {
		o.RedialSeed = defaultRedialSeed
	}
	return o
}

// ConnError is Send's typed failure: the connection lifecycle exhausted its
// redial budget on one directed link. The live plane surfaces it as
// reconnect evidence for the health plane; Unwrap exposes the final
// underlying error (so errors.As still finds a net.Error timeout).
type ConnError struct {
	// From, To name the directed link.
	From, To int
	// Gen is the session generation of the last failed attempt.
	Gen uint32
	// Redials is how many fresh-generation redial cycles were attempted.
	Redials int
	// Timeout records whether the final failure was a net.Error timeout
	// (a stalled peer) rather than a hard connection error.
	Timeout bool
	// Err is the final underlying error.
	Err error
}

// Error implements error.
func (e *ConnError) Error() string {
	kind := "failed"
	if e.Timeout {
		kind = "timed out (peer stalled)"
	}
	return fmt.Sprintf("netsim: tcp send %d→%d %s after %d redial(s) (gen %d): %v",
		e.From, e.To, kind, e.Redials, e.Gen, e.Err)
}

// Unwrap exposes the underlying error.
func (e *ConnError) Unwrap() error { return e.Err }

// TCPStats is a snapshot of the socket plane's lifecycle counters.
type TCPStats struct {
	Dials            int64 // connections dialed (including redials)
	Redials          int64 // fresh-generation redial cycles after a failure
	Resyncs          int64 // accepted generations superseding a broken stream
	StaleConns       int64 // handshakes rejected for a non-advancing generation
	StaleFrames      int64 // frames rejected for a generation mismatch
	CorruptFrames    int64 // frames rejected by length/format validation
	DroppedFrames    int64 // decoded frames discarded (close-time drain, misrouted)
	IdleDrops        int64 // half-open connections killed by the idle read deadline
	AcceptDrops      int64 // accepted connections blacked out by wire chaos
	HandshakeRejects int64 // connections dropped before a valid HELLO
	ActiveConns      int64 // currently-open accepted connections
}

// tcpConn is one dial-side connection: the socket, its session generation,
// and the write lock that keeps frames from interleaving.
type tcpConn struct {
	c   net.Conn
	gen uint32
	wmu sync.Mutex
}

// TCPTransport implements Transport over real loopback TCP sockets: each
// node owns a listener, connections are dialed lazily per (src, dst) pair
// with a generation handshake, and messages travel as length-prefixed v2
// frames. It is the closest-to-production live substrate — the same CaSync
// task graphs that run over channels run unchanged over genuine sockets
// (see core.LiveConfig.Transport).
type TCPTransport struct {
	opts      TCPOptions
	listeners []net.Listener
	inboxes   []chan Message
	chaos     *wireChaos // nil without fault injection

	mu       sync.Mutex
	conns    map[[2]int]*tcpConn // (src,dst) → dialed connection
	genCtr   map[[2]int]uint32   // next session generation per directed link
	lastGen  map[[2]int]uint32   // highest accepted generation per directed link
	accepted map[net.Conn]bool   // live accepted connections (force-closed by Close)

	writeTimeout int64 // nanoseconds, atomic (SetWriteTimeout)
	redialCtr    atomic.Uint64
	stats        TCPStats // fields updated atomically

	once sync.Once
	done chan struct{}
	wg   sync.WaitGroup
}

// NewTCPTransport starts listeners for n nodes on loopback with default
// options. Callers must Close it to release sockets.
func NewTCPTransport(n, capacity int) (*TCPTransport, error) {
	return NewTCPTransportOpts(n, capacity, TCPOptions{})
}

// NewTCPTransportOpts starts listeners for n nodes on loopback and returns
// the connected transport. Callers must Close it to release sockets.
func NewTCPTransportOpts(n, capacity int, opts TCPOptions) (*TCPTransport, error) {
	o := opts.withDefaults()
	t := &TCPTransport{
		opts:         o,
		listeners:    make([]net.Listener, n),
		inboxes:      make([]chan Message, n),
		chaos:        newWireChaos(o.Chaos),
		conns:        map[[2]int]*tcpConn{},
		genCtr:       map[[2]int]uint32{},
		lastGen:      map[[2]int]uint32{},
		accepted:     map[net.Conn]bool{},
		writeTimeout: int64(o.WriteTimeout),
		done:         make(chan struct{}),
	}
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("netsim: listen for node %d: %w", i, err)
		}
		t.listeners[i] = l
		t.inboxes[i] = make(chan Message, capacity)
		t.wg.Add(1)
		go t.acceptLoop(i, l)
	}
	return t, nil
}

// Nodes returns the endpoint count.
func (t *TCPTransport) Nodes() int { return len(t.listeners) }

// Addr returns node i's listen address (tests and diagnostics).
func (t *TCPTransport) Addr(i int) net.Addr { return t.listeners[i].Addr() }

// SetWriteTimeout bounds how long one frame write may block on a stalled
// peer. Zero or negative disables the deadline (not recommended).
func (t *TCPTransport) SetWriteTimeout(d time.Duration) {
	atomic.StoreInt64(&t.writeTimeout, int64(d))
}

// CorruptFrames reports how many inbound frames failed validation and were
// discarded (the connection is dropped alongside).
func (t *TCPTransport) CorruptFrames() int64 { return atomic.LoadInt64(&t.stats.CorruptFrames) }

// Stats snapshots the lifecycle counters.
func (t *TCPTransport) Stats() TCPStats {
	return TCPStats{
		Dials:            atomic.LoadInt64(&t.stats.Dials),
		Redials:          atomic.LoadInt64(&t.stats.Redials),
		Resyncs:          atomic.LoadInt64(&t.stats.Resyncs),
		StaleConns:       atomic.LoadInt64(&t.stats.StaleConns),
		StaleFrames:      atomic.LoadInt64(&t.stats.StaleFrames),
		CorruptFrames:    atomic.LoadInt64(&t.stats.CorruptFrames),
		DroppedFrames:    atomic.LoadInt64(&t.stats.DroppedFrames),
		IdleDrops:        atomic.LoadInt64(&t.stats.IdleDrops),
		AcceptDrops:      atomic.LoadInt64(&t.stats.AcceptDrops),
		HandshakeRejects: atomic.LoadInt64(&t.stats.HandshakeRejects),
		ActiveConns:      atomic.LoadInt64(&t.stats.ActiveConns),
	}
}

// WireStats snapshots the wire-chaos injector's counters (nil when the
// transport runs without fault injection).
func (t *TCPTransport) WireStats() *WireChaosStats { return t.chaos.snapshot() }

// count bumps one lifecycle counter and its metric family together.
func (t *TCPTransport) count(field *int64, metric, help string) {
	atomic.AddInt64(field, 1)
	t.opts.Metrics.Counter(metric, help).Inc()
}

func (t *TCPTransport) acceptLoop(node int, l net.Listener) {
	defer t.wg.Done()
	for {
		conn, err := l.Accept()
		if err != nil {
			return // listener closed
		}
		if t.chaos.acceptDrop(node) {
			// Accept-time blackout: the TCP handshake succeeded (the dialer
			// sees an established connection) but the node never services it.
			t.count(&t.stats.AcceptDrops, MetricTCPAcceptDrops,
				"accepted connections blacked out by wire chaos")
			conn.Close()
			continue
		}
		t.mu.Lock()
		select {
		case <-t.done:
			t.mu.Unlock()
			conn.Close()
			return
		default:
		}
		t.accepted[conn] = true
		t.mu.Unlock()
		atomic.AddInt64(&t.stats.ActiveConns, 1)
		t.opts.Metrics.Gauge(MetricTCPActiveConns, "currently-open accepted connections").Add(1)
		t.wg.Add(1)
		go t.readLoop(node, conn)
	}
}

// readLoop services one accepted connection: HELLO handshake, generation
// admission, then length-prefixed frames under an idle read deadline.
func (t *TCPTransport) readLoop(node int, conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		conn.Close()
		t.mu.Lock()
		delete(t.accepted, conn)
		t.mu.Unlock()
		atomic.AddInt64(&t.stats.ActiveConns, -1)
		t.opts.Metrics.Gauge(MetricTCPActiveConns, "currently-open accepted connections").Add(-1)
	}()

	// Handshake: the stream is inadmissible until a valid HELLO advances
	// the directed link's generation.
	if d := t.opts.HandshakeTimeout; d > 0 {
		conn.SetReadDeadline(time.Now().Add(d)) //hipress:wallclock socket deadline arithmetic
	}
	var hello [helloLen]byte
	if _, err := io.ReadFull(conn, hello[:]); err != nil {
		t.count(&t.stats.HandshakeRejects, MetricTCPHandshakeRejects,
			"connections dropped before a valid HELLO")
		return
	}
	src, gen, err := decodeHello(hello[:])
	if err != nil {
		t.count(&t.stats.HandshakeRejects, MetricTCPHandshakeRejects,
			"connections dropped before a valid HELLO")
		return
	}
	key := [2]int{src, node}
	t.mu.Lock()
	last := t.lastGen[key]
	stale := gen <= last
	if !stale {
		t.lastGen[key] = gen
	}
	t.mu.Unlock()
	if stale {
		// A generation that does not advance is a leftover of a superseded
		// stream (or a replay): reject the whole connection.
		t.count(&t.stats.StaleConns, MetricTCPStaleConns,
			"handshakes rejected for a non-advancing generation")
		return
	}
	if last > 0 {
		// This link had an earlier stream that died (possibly mid-frame);
		// the fresh generation resynchronizes it at a clean frame boundary.
		t.count(&t.stats.Resyncs, MetricTCPResyncs,
			"connection generations accepted over a superseded stream")
	}

	var hdr [4]byte
	corrupt := 0 // consecutive undecodable frame bodies on this stream
	for {
		if d := t.opts.IdleReadTimeout; d > 0 {
			conn.SetReadDeadline(time.Now().Add(d)) //hipress:wallclock socket deadline arithmetic
		} else {
			conn.SetReadDeadline(time.Time{})
		}
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			var nerr net.Error
			if isNetTimeout(err, &nerr) {
				// Half-open peer: the socket is alive but nothing arrives.
				t.count(&t.stats.IdleDrops, MetricTCPIdleDrops,
					"half-open connections killed by the idle read deadline")
			}
			return
		}
		frameLen := int(binary.LittleEndian.Uint32(hdr[:]))
		// Validate the claimed length BEFORE allocating: a corrupt prefix
		// may claim gigabytes.
		if frameLen < frameHdrLen || frameLen > t.opts.MaxFrameLen {
			t.count(&t.stats.CorruptFrames, MetricTCPCorruptFrames,
				"frames rejected by length/format validation")
			return
		}
		frame := make([]byte, frameLen)
		if _, err := io.ReadFull(conn, frame); err != nil {
			return
		}
		msg, fgen, err := decodeFrame(frame)
		if err != nil {
			t.count(&t.stats.CorruptFrames, MetricTCPCorruptFrames,
				"frames rejected by length/format validation")
			// The length prefix was consistent, so framing still holds:
			// drop the bad body in place and let the reliable layer
			// retransmit on this connection. Only consecutive failures —
			// the signature of a desynced stream — kill it.
			if corrupt++; corrupt > corruptFrameTolerance {
				return
			}
			continue
		}
		corrupt = 0
		if fgen != gen {
			// A frame from another generation on this stream means the
			// sender state-machine is broken; kill the connection.
			t.count(&t.stats.StaleFrames, MetricTCPStaleConns,
				"handshakes rejected for a non-advancing generation")
			return
		}
		if msg.To != node {
			t.count(&t.stats.DroppedFrames, MetricTCPDroppedFrames,
				"decoded frames discarded (drain or misrouted)")
			continue
		}
		// Graceful drain: prefer a non-blocking delivery so frames already
		// on the wire at Close still land while the inbox has room.
		select {
		case t.inboxes[node] <- msg:
			continue
		default:
		}
		select {
		case <-t.done:
			t.count(&t.stats.DroppedFrames, MetricTCPDroppedFrames,
				"decoded frames discarded (drain or misrouted)")
			return
		case t.inboxes[node] <- msg:
		}
	}
}

// encodeHello builds the 13-byte handshake.
func encodeHello(src int, gen uint32) []byte {
	var out [helloLen]byte
	binary.LittleEndian.PutUint32(out[0:], helloMagic)
	out[4] = frameVersion
	binary.LittleEndian.PutUint32(out[5:], uint32(int32(src)))
	binary.LittleEndian.PutUint32(out[9:], gen)
	return out[:]
}

// decodeHello validates the handshake and returns (src, gen).
func decodeHello(b []byte) (int, uint32, error) {
	if len(b) != helloLen {
		return 0, 0, fmt.Errorf("netsim: hello is %d bytes, want %d", len(b), helloLen)
	}
	if binary.LittleEndian.Uint32(b[0:]) != helloMagic {
		return 0, 0, fmt.Errorf("netsim: hello magic %08x != %08x", binary.LittleEndian.Uint32(b[0:]), helloMagic)
	}
	if b[4] != frameVersion {
		return 0, 0, fmt.Errorf("netsim: hello version %d != %d", b[4], frameVersion)
	}
	src := int(int32(binary.LittleEndian.Uint32(b[5:])))
	gen := binary.LittleEndian.Uint32(b[9:])
	if src < 0 {
		return 0, 0, fmt.Errorf("netsim: hello from negative node %d", src)
	}
	if gen == 0 {
		return 0, 0, fmt.Errorf("netsim: hello with generation 0 (generations start at 1)")
	}
	return src, gen, nil
}

// encodeFrame builds one length-prefixed v2 frame carrying the connection's
// session generation, stamping the frame checksum over everything after it.
func encodeFrame(msg Message, gen uint32) []byte {
	grad := []byte(msg.Gradient)
	payload := msg.Payload
	if len(msg.AckBatch) > 0 {
		payload = encodeAckBatch(msg.AckBatch)
	}
	frameLen := frameHdrLen + len(grad) + len(payload)
	out := make([]byte, 4+frameLen)
	binary.LittleEndian.PutUint32(out[0:], uint32(frameLen))
	out[8] = frameVersion
	binary.LittleEndian.PutUint32(out[9:], gen)
	binary.LittleEndian.PutUint32(out[13:], uint32(int32(msg.From)))
	binary.LittleEndian.PutUint32(out[17:], uint32(int32(msg.To)))
	binary.LittleEndian.PutUint64(out[21:], uint64(int64(msg.Step)))
	binary.LittleEndian.PutUint32(out[29:], msg.Sum)
	binary.LittleEndian.PutUint16(out[33:], uint16(msg.Attempt))
	if msg.Ack {
		out[35] |= 1
	}
	if msg.Heartbeat {
		out[35] |= 2
	}
	if len(msg.AckBatch) > 0 {
		out[35] |= 4
	}
	binary.LittleEndian.PutUint16(out[36:], uint16(len(grad)))
	copy(out[38:], grad)
	copy(out[38+len(grad):], payload)
	binary.LittleEndian.PutUint32(out[4:], crc32.ChecksumIEEE(out[8:]))
	return out
}

// encodeAckBatch serializes batched-ack entries into the frame payload
// region: u16 count, then per entry u64 step | u16 attempt | u16 gradLen |
// grad.
func encodeAckBatch(refs []AckRef) []byte {
	size := 2
	for _, ref := range refs {
		size += 8 + 2 + 2 + len(ref.Gradient)
	}
	out := make([]byte, size)
	binary.LittleEndian.PutUint16(out[0:], uint16(len(refs)))
	off := 2
	for _, ref := range refs {
		binary.LittleEndian.PutUint64(out[off:], uint64(int64(ref.Step)))
		binary.LittleEndian.PutUint16(out[off+8:], uint16(ref.Attempt))
		binary.LittleEndian.PutUint16(out[off+10:], uint16(len(ref.Gradient)))
		copy(out[off+12:], ref.Gradient)
		off += 12 + len(ref.Gradient)
	}
	return out
}

// decodeAckBatch parses a batched-ack payload, rejecting non-canonical
// encodings (zero entries, truncation, trailing bytes) so accepted batch
// frames round-trip exactly.
func decodeAckBatch(b []byte) ([]AckRef, error) {
	if len(b) < 2 {
		return nil, fmt.Errorf("netsim: ack batch truncated: %d bytes", len(b))
	}
	count := int(binary.LittleEndian.Uint16(b[0:]))
	if count == 0 {
		return nil, fmt.Errorf("netsim: ack batch with zero entries")
	}
	refs := make([]AckRef, 0, count)
	off := 2
	for i := 0; i < count; i++ {
		if off+12 > len(b) {
			return nil, fmt.Errorf("netsim: ack batch entry %d/%d truncated at offset %d", i, count, off)
		}
		step := int(int64(binary.LittleEndian.Uint64(b[off:])))
		attempt := int(binary.LittleEndian.Uint16(b[off+8:]))
		gradLen := int(binary.LittleEndian.Uint16(b[off+10:]))
		if off+12+gradLen > len(b) {
			return nil, fmt.Errorf("netsim: ack batch entry %d/%d gradient length %d exceeds payload", i, count, gradLen)
		}
		refs = append(refs, AckRef{Gradient: string(b[off+12 : off+12+gradLen]), Step: step, Attempt: attempt})
		off += 12 + gradLen
	}
	if off != len(b) {
		return nil, fmt.Errorf("netsim: ack batch with %d trailing bytes", len(b)-off)
	}
	return refs, nil
}

// decodeFrame validates and decodes one v2 frame body (without the u32
// length prefix), returning the message and the generation it was encoded
// under. Truncated or inconsistent frames yield a descriptive error so
// chaos-corrupted wire bytes fail loudly instead of decoding garbage.
func decodeFrame(frame []byte) (Message, uint32, error) {
	if len(frame) < frameHdrLen {
		return Message{}, 0, fmt.Errorf("netsim: truncated frame: %d bytes < %d-byte header", len(frame), frameHdrLen)
	}
	// Frame checksum first: it covers every byte after itself, so any wire
	// bit flip — header fields included — is rejected before field decoding.
	if fsum, got := binary.LittleEndian.Uint32(frame[0:]), crc32.ChecksumIEEE(frame[4:]); fsum != got {
		return Message{}, 0, fmt.Errorf("netsim: frame checksum %08x != computed %08x", fsum, got)
	}
	if frame[4] != frameVersion {
		return Message{}, 0, fmt.Errorf("netsim: frame version %d != %d", frame[4], frameVersion)
	}
	gen := binary.LittleEndian.Uint32(frame[5:])
	from := int(int32(binary.LittleEndian.Uint32(frame[9:])))
	to := int(int32(binary.LittleEndian.Uint32(frame[13:])))
	step := int(int64(binary.LittleEndian.Uint64(frame[17:])))
	sum := binary.LittleEndian.Uint32(frame[25:])
	attempt := int(binary.LittleEndian.Uint16(frame[29:]))
	flags := frame[31]
	if flags&^7 != 0 {
		return Message{}, 0, fmt.Errorf("netsim: frame with unknown flags 0x%02x", flags)
	}
	gradLen := int(binary.LittleEndian.Uint16(frame[32:]))
	if frameHdrLen+gradLen > len(frame) {
		return Message{}, 0, fmt.Errorf("netsim: frame gradient length %d exceeds frame body %d",
			gradLen, len(frame)-frameHdrLen)
	}
	grad := string(frame[frameHdrLen : frameHdrLen+gradLen])
	msg := Message{From: from, To: to, Gradient: grad, Step: step,
		Attempt: attempt, Ack: flags&1 != 0, Heartbeat: flags&2 != 0, Sum: sum}
	if flags&4 != 0 {
		refs, err := decodeAckBatch(frame[frameHdrLen+gradLen:])
		if err != nil {
			return Message{}, 0, err
		}
		msg.AckBatch = refs
		return msg, gen, nil
	}
	msg.Payload = append([]byte(nil), frame[frameHdrLen+gradLen:]...)
	return msg, gen, nil
}

// Send implements Transport. A write failure (stalled peer, mid-stream cut,
// half-open receiver) drops the connection and redials with a fresh session
// generation under full-jitter backoff, retransmitting the whole frame; the
// receiver's generation admission guarantees the retransmission starts from
// a clean frame boundary. When the redial budget is exhausted Send returns
// a typed *ConnError (which still unwraps to a net.Error timeout when the
// final failure was a stall).
func (t *TCPTransport) Send(msg Message) error {
	select {
	case <-t.done:
		return fmt.Errorf("netsim: tcp transport closed")
	default:
	}
	if msg.To < 0 || msg.To >= len(t.listeners) {
		return fmt.Errorf("netsim: tcp send to invalid node %d", msg.To)
	}
	var lastErr error
	var lastGen uint32
	redials := 0
	for attempt := 0; attempt <= t.opts.RedialAttempts; attempt++ {
		if attempt > 0 {
			redials++
			t.count(&t.stats.Redials, MetricTCPRedials,
				"fresh-generation redial cycles after a send failure")
			timer := time.NewTimer(t.redialBackoff(attempt - 1))
			select {
			case <-t.done:
				timer.Stop()
				return fmt.Errorf("netsim: tcp transport closed")
			case <-timer.C:
			}
		}
		tc, err := t.connTo(msg.From, msg.To)
		if err != nil {
			select {
			case <-t.done:
				return fmt.Errorf("netsim: tcp transport closed")
			default:
			}
			lastErr = err
			continue
		}
		lastGen = tc.gen
		if err := t.writeFrame(tc, msg); err == nil {
			return nil
		} else {
			// The stream may hold a partial frame now: drop the connection
			// so the peer resyncs on the next generation's handshake.
			t.dropConn(msg.From, msg.To, tc)
			lastErr = err
		}
	}
	var nerr net.Error
	return &ConnError{From: msg.From, To: msg.To, Gen: lastGen, Redials: redials,
		Timeout: isNetTimeout(lastErr, &nerr), Err: lastErr}
}

// redialBackoff draws the full-jitter wait before 0-based redial cycle i:
// uniform in (0, d] where d is the capped exponential, hashed from the
// seeded splitmix64 stream (the PR 5 retry-jitter construction).
func (t *TCPTransport) redialBackoff(i int) time.Duration {
	d := t.opts.RedialBackoff
	for k := 0; k < i; k++ {
		d *= 2
		if d >= t.opts.RedialMaxBackoff {
			d = t.opts.RedialMaxBackoff
			break
		}
	}
	if d > t.opts.RedialMaxBackoff {
		d = t.opts.RedialMaxBackoff
	}
	if d <= 0 {
		return 0
	}
	h := splitmix64(t.opts.RedialSeed ^ t.redialCtr.Add(1)*0x9e3779b97f4a7c15)
	return 1 + time.Duration(h%uint64(d))
}

// writeFrame transmits one frame under the connection's write lock and
// deadline.
func (t *TCPTransport) writeFrame(tc *tcpConn, msg Message) error {
	frame := encodeFrame(msg, tc.gen)
	tc.wmu.Lock()
	defer tc.wmu.Unlock()
	if d := time.Duration(atomic.LoadInt64(&t.writeTimeout)); d > 0 {
		tc.c.SetWriteDeadline(time.Now().Add(d)) //hipress:wallclock socket deadline arithmetic
	}
	if _, err := tc.c.Write(frame); err != nil {
		var nerr net.Error
		if isNetTimeout(err, &nerr) {
			return fmt.Errorf("netsim: tcp write %d→%d timed out (peer stalled): %w", msg.From, msg.To, nerr)
		}
		return fmt.Errorf("netsim: tcp write %d→%d: %w", msg.From, msg.To, err)
	}
	return nil
}

// isNetTimeout reports whether err is (or wraps) a net.Error timeout,
// storing the net.Error into *out.
func isNetTimeout(err error, out *net.Error) bool {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		*out = ne
		return true
	}
	return false
}

// connTo returns (dialing and handshaking if needed) the connection for a
// sender/receiver pair. Each dial advances the directed link's session
// generation and opens with the HELLO carrying it.
func (t *TCPTransport) connTo(from, to int) (*tcpConn, error) {
	key := [2]int{from, to}
	t.mu.Lock()
	defer t.mu.Unlock()
	select {
	case <-t.done:
		return nil, fmt.Errorf("netsim: tcp transport closed")
	default:
	}
	if c, ok := t.conns[key]; ok {
		return c, nil
	}
	start := time.Now() //hipress:wallclock handshake-latency histogram
	t.genCtr[key]++
	gen := t.genCtr[key]
	c, err := net.DialTimeout("tcp", t.listeners[to].Addr().String(), t.opts.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("netsim: tcp dial %d→%d: %w", from, to, err)
	}
	t.count(&t.stats.Dials, MetricTCPDials, "connections dialed (including redials)")
	c = t.chaos.wrap(c, Link{Src: from, Dst: to}, gen)
	if d := time.Duration(atomic.LoadInt64(&t.writeTimeout)); d > 0 {
		c.SetWriteDeadline(time.Now().Add(d)) //hipress:wallclock socket deadline arithmetic
	}
	if _, err := c.Write(encodeHello(from, gen)); err != nil {
		c.Close()
		return nil, fmt.Errorf("netsim: tcp hello %d→%d (gen %d): %w", from, to, gen, err)
	}
	t.opts.Metrics.Histogram(MetricTCPHandshakeSeconds,
		"dial + HELLO handshake latency (seconds)", telemetry.LatencyBuckets).
		Observe(time.Since(start).Seconds()) //hipress:wallclock handshake-latency histogram
	tc := &tcpConn{c: c, gen: gen}
	t.conns[key] = tc
	return tc, nil
}

// dropConn removes a failed connection from the pool (if it is still the
// registered one) and closes it.
func (t *TCPTransport) dropConn(from, to int, tc *tcpConn) {
	key := [2]int{from, to}
	t.mu.Lock()
	if t.conns[key] == tc {
		delete(t.conns, key)
	}
	t.mu.Unlock()
	tc.c.Close()
}

// Recv implements Transport.
func (t *TCPTransport) Recv(node int) (Message, bool) {
	if node < 0 || node >= len(t.inboxes) {
		return Message{}, false
	}
	select {
	case <-t.done:
		select {
		case m := <-t.inboxes[node]:
			return m, true
		default:
			return Message{}, false
		}
	case m := <-t.inboxes[node]:
		return m, true
	}
}

// Close implements Transport: listeners shut, dialed connections get a
// graceful write-side shutdown (FIN) so frames already on the wire drain
// into the inboxes, then every remaining connection — including half-open
// externally-dialed ones — is force-closed and all loops are joined, so no
// goroutine outlives Close. Idempotent and safe to race with in-flight
// Sends.
func (t *TCPTransport) Close() {
	t.once.Do(func() {
		close(t.done)
		for _, l := range t.listeners {
			if l != nil {
				l.Close()
			}
		}
		t.mu.Lock()
		dialed := make([]*tcpConn, 0, len(t.conns))
		for _, c := range t.conns {
			dialed = append(dialed, c)
		}
		t.conns = map[[2]int]*tcpConn{}
		t.mu.Unlock()
		// Graceful drain: FIN the write side so the peers' read loops see
		// EOF after consuming everything already written.
		for _, tc := range dialed {
			if cw, ok := tc.c.(interface{ CloseWrite() error }); ok {
				cw.CloseWrite()
			} else {
				tc.c.Close()
			}
		}
		deadline := time.Now().Add(closeDrainTimeout) //hipress:wallclock close-drain deadline
		for time.Now().Before(deadline) {             //hipress:wallclock close-drain deadline
			t.mu.Lock()
			n := len(t.accepted)
			t.mu.Unlock()
			if n == 0 {
				break
			}
			time.Sleep(2 * time.Millisecond)
		}
		// Force-close stragglers (half-open external peers that never FIN).
		t.mu.Lock()
		for c := range t.accepted {
			c.Close()
		}
		t.mu.Unlock()
		for _, tc := range dialed {
			tc.c.Close()
		}
		t.wg.Wait()
	})
}
