package netsim

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"
)

func TestTCPTransportRoundTrip(t *testing.T) {
	tr, err := NewTCPTransport(3, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if tr.Nodes() != 3 {
		t.Fatalf("Nodes = %d", tr.Nodes())
	}
	want := Message{From: 0, To: 2, Gradient: "layer7/p3", Step: 42, Payload: []byte{9, 8, 7, 6}}
	if err := tr.Send(want); err != nil {
		t.Fatal(err)
	}
	got, ok := tr.Recv(2)
	if !ok {
		t.Fatal("Recv returned !ok")
	}
	if got.From != 0 || got.To != 2 || got.Gradient != want.Gradient || got.Step != 42 ||
		string(got.Payload) != string(want.Payload) {
		t.Fatalf("Recv = %+v", got)
	}
}

func TestTCPTransportEmptyPayloadAndGradient(t *testing.T) {
	tr, err := NewTCPTransport(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if err := tr.Send(Message{From: 0, To: 1}); err != nil {
		t.Fatal(err)
	}
	got, ok := tr.Recv(1)
	if !ok || got.Gradient != "" || len(got.Payload) != 0 {
		t.Fatalf("empty message mangled: %+v ok=%v", got, ok)
	}
}

func TestTCPTransportFIFOPerPair(t *testing.T) {
	tr, err := NewTCPTransport(2, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	for i := 0; i < 32; i++ {
		if err := tr.Send(Message{From: 0, To: 1, Step: i, Payload: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 32; i++ {
		m, ok := tr.Recv(1)
		if !ok || m.Step != i {
			t.Fatalf("out of order at %d: %+v ok=%v", i, m, ok)
		}
	}
}

func TestTCPTransportConcurrentMesh(t *testing.T) {
	const n, per = 4, 25
	tr, err := NewTCPTransport(n, n*per)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	var wg sync.WaitGroup
	for src := 0; src < n; src++ {
		wg.Add(1)
		go func(src int) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				for dst := 0; dst < n; dst++ {
					msg := Message{From: src, To: dst, Gradient: fmt.Sprintf("g%d", src), Step: k,
						Payload: []byte{byte(src), byte(k)}}
					if err := tr.Send(msg); err != nil {
						t.Errorf("send: %v", err)
						return
					}
				}
			}
		}(src)
	}
	counts := make([]int, n)
	var rg sync.WaitGroup
	for node := 0; node < n; node++ {
		rg.Add(1)
		go func(node int) {
			defer rg.Done()
			for i := 0; i < n*per; i++ {
				m, ok := tr.Recv(node)
				if !ok {
					t.Errorf("node %d closed early", node)
					return
				}
				if m.To != node {
					t.Errorf("node %d got message for %d", node, m.To)
					return
				}
				counts[node]++
			}
		}(node)
	}
	wg.Wait()
	rg.Wait()
	for node, c := range counts {
		if c != n*per {
			t.Fatalf("node %d got %d messages, want %d", node, c, n*per)
		}
	}
}

func TestTCPTransportInvalidAddressAndClose(t *testing.T) {
	tr, err := NewTCPTransport(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Send(Message{From: 0, To: 9}); err == nil {
		t.Fatal("send to invalid node accepted")
	}
	if _, ok := tr.Recv(-1); ok {
		t.Fatal("recv on invalid node returned ok")
	}
	tr.Close()
	tr.Close() // double close must be safe
	if err := tr.Send(Message{From: 0, To: 1}); err == nil {
		t.Fatal("send after close accepted")
	}
	if _, ok := tr.Recv(0); ok {
		t.Fatal("recv after close with empty inbox returned ok")
	}
}

func TestTCPTransportLargePayload(t *testing.T) {
	tr, err := NewTCPTransport(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	payload := make([]byte, 1<<20)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	if err := tr.Send(Message{From: 0, To: 1, Gradient: "big", Payload: payload}); err != nil {
		t.Fatal(err)
	}
	got, ok := tr.Recv(1)
	if !ok || len(got.Payload) != len(payload) {
		t.Fatalf("large payload: len=%d ok=%v", len(got.Payload), ok)
	}
	for i := range payload {
		if got.Payload[i] != payload[i] {
			t.Fatalf("payload corrupted at %d", i)
		}
	}
}

func TestFrameCodecProperties(t *testing.T) {
	cases := []struct {
		msg Message
		gen uint32
	}{
		{Message{From: 0, To: 1}, 1},
		{Message{From: 3, To: 2, Gradient: "w", Step: 1 << 30, Payload: []byte{1}}, 7},
		{Message{From: 15, To: 0, Gradient: string(make([]byte, 300)), Payload: make([]byte, 5000)}, 0xffffffff},
		{Message{From: 1, To: 0, Gradient: "g", Step: 7, Attempt: 3, Ack: true, Sum: 0xdeadbeef}, 2},
	}
	for i, tc := range cases {
		frame := encodeFrame(tc.msg, tc.gen)
		dec, gen, err := decodeFrame(frame[4:])
		if err != nil {
			t.Fatalf("case %d: decode failed: %v", i, err)
		}
		if gen != tc.gen {
			t.Fatalf("case %d: generation %d != %d", i, gen, tc.gen)
		}
		if dec.From != tc.msg.From || dec.To != tc.msg.To || dec.Step != tc.msg.Step ||
			dec.Gradient != tc.msg.Gradient || string(dec.Payload) != string(tc.msg.Payload) ||
			dec.Attempt != tc.msg.Attempt || dec.Ack != tc.msg.Ack || dec.Sum != tc.msg.Sum {
			t.Fatalf("case %d: round trip mismatch: %+v vs %+v", i, dec, tc.msg)
		}
	}
	if _, _, err := decodeFrame([]byte{1, 2}); err == nil {
		t.Fatal("short frame accepted")
	}
	// restamp recomputes the frame checksum after a deliberate field mangle,
	// so each test below exercises its specific validator rather than the
	// blanket corruption check.
	restamp := func(frame []byte) []byte {
		binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(frame[8:]))
		return frame
	}
	// Any single flipped bit — here the version byte, without restamping —
	// must fail the frame checksum.
	flip := encodeFrame(Message{From: 0, To: 1, Gradient: "abc"}, 1)
	flip[8] ^= 0x20
	if _, _, err := decodeFrame(flip[4:]); err == nil {
		t.Fatal("bit-flipped frame passed the frame checksum")
	}
	// Header claiming a longer gradient than the frame holds.
	bad := encodeFrame(Message{From: 0, To: 1, Gradient: "abc"}, 1)
	bad[4+32] = 0xFF // corrupt gradLen (gradLen sits at body offset 32)
	if _, _, err := decodeFrame(restamp(bad)[4:]); err == nil {
		t.Fatal("corrupt gradLen accepted")
	}
	// Unknown flag bits must be rejected, not silently ignored.
	bad2 := encodeFrame(Message{From: 0, To: 1, Gradient: "x"}, 1)
	bad2[4+31] = 0x80
	if _, _, err := decodeFrame(restamp(bad2)[4:]); err == nil {
		t.Fatal("unknown flags accepted")
	}
	// A v1-era frame (wrong version byte) must be rejected up front.
	bad3 := encodeFrame(Message{From: 0, To: 1, Gradient: "x"}, 1)
	bad3[8] = 1
	if _, _, err := decodeFrame(restamp(bad3)[4:]); err == nil {
		t.Fatal("wrong frame version accepted")
	}
}

func TestFrameCodecAckBatch(t *testing.T) {
	refs := []AckRef{
		{Gradient: "layer3.weight/p0", Step: 1<<20 | 3, Attempt: 1},
		{Gradient: "layer3.weight/p1", Step: 2<<20 | 3},
		{Gradient: "", Step: -1, Attempt: 4097}, // hedge-band attempt, empty gradient
	}
	msg := Message{From: 2, To: 1, Ack: true, Step: 42, Attempt: len(refs), AckBatch: refs}
	frame := encodeFrame(msg, 9)
	dec, gen, err := decodeFrame(frame[4:])
	if err != nil {
		t.Fatalf("batched ack frame rejected: %v", err)
	}
	if gen != 9 || !dec.Ack || dec.From != 2 || dec.To != 1 || dec.Step != 42 || dec.Attempt != len(refs) {
		t.Fatalf("batched ack header mismatch: %+v gen=%d", dec, gen)
	}
	if len(dec.Payload) != 0 {
		t.Fatalf("batched ack decoded with %d payload bytes", len(dec.Payload))
	}
	if len(dec.AckBatch) != len(refs) {
		t.Fatalf("AckBatch has %d entries, want %d", len(dec.AckBatch), len(refs))
	}
	for i, ref := range refs {
		if dec.AckBatch[i] != ref {
			t.Fatalf("AckBatch[%d] = %+v, want %+v", i, dec.AckBatch[i], ref)
		}
	}
	// Byte-level round trip: re-encoding the decoded message must reproduce
	// the frame exactly (the fuzz invariant, pinned here deterministically).
	if re := encodeFrame(dec, gen); !bytes.Equal(re, frame) {
		t.Fatalf("batched ack does not round-trip:\n in: %x\nout: %x", frame, re)
	}

	restamp := func(frame []byte) []byte {
		binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(frame[8:]))
		return frame
	}
	// Non-canonical batches must be rejected, or decode→encode would not be
	// an identity: an empty batch (flag set, count 0) ...
	empty := encodeFrame(Message{From: 1, To: 0, Ack: true, AckBatch: []AckRef{{Gradient: "g"}}}, 1)
	binary.LittleEndian.PutUint16(empty[4+frameHdrLen:], 0) // count = 0
	if _, _, err := decodeFrame(restamp(empty)[4:]); err == nil {
		t.Fatal("empty ack batch accepted")
	}
	// ... trailing bytes past the last entry ...
	long := encodeFrame(Message{From: 1, To: 0, Ack: true, AckBatch: []AckRef{{Gradient: "g", Step: 1}}}, 1)
	long = append(long, 0xee)
	if _, _, err := decodeFrame(restamp(long)[4:]); err == nil {
		t.Fatal("ack batch with trailing bytes accepted")
	}
	// ... and a truncated entry (count claims more than the bytes hold).
	trunc := encodeFrame(Message{From: 1, To: 0, Ack: true, AckBatch: []AckRef{{Gradient: "g", Step: 1}}}, 1)
	binary.LittleEndian.PutUint16(trunc[4+frameHdrLen:], 2)
	if _, _, err := decodeFrame(restamp(trunc)[4:]); err == nil {
		t.Fatal("truncated ack batch accepted")
	}
}

func TestHelloCodecProperties(t *testing.T) {
	for _, tc := range []struct {
		src int
		gen uint32
	}{{0, 1}, {3, 2}, {1023, 0xffffffff}} {
		src, gen, err := decodeHello(encodeHello(tc.src, tc.gen))
		if err != nil || src != tc.src || gen != tc.gen {
			t.Fatalf("hello round trip (%d, %d) = (%d, %d, %v)", tc.src, tc.gen, src, gen, err)
		}
	}
	good := encodeHello(1, 1)
	for name, mangle := range map[string]func([]byte) []byte{
		"short":        func(b []byte) []byte { return b[:len(b)-1] },
		"bad-magic":    func(b []byte) []byte { b[0] ^= 0xFF; return b },
		"bad-version":  func(b []byte) []byte { b[4] = 1; return b },
		"negative-src": func(b []byte) []byte { b[8] = 0x80; return b },
		"zero-gen":     func(b []byte) []byte { b[9], b[10], b[11], b[12] = 0, 0, 0, 0; return b },
	} {
		b := mangle(append([]byte(nil), good...))
		if _, _, err := decodeHello(b); err == nil {
			t.Fatalf("%s hello accepted", name)
		}
	}
}

// TestTCPFrameLenCapBeforeAlloc drives corrupt length prefixes — including
// the classic 1 GiB claim — at a live listener and proves the frame is
// rejected by the configured cap before any allocation happens.
func TestTCPFrameLenCapBeforeAlloc(t *testing.T) {
	cases := []struct {
		name     string
		claim    uint32
		maxFrame int // 0 = default 64 MiB
	}{
		{"one-gib-claim", 1 << 30, 0},
		{"max-uint32-claim", 0xFFFFFFFF, 0},
		{"just-over-default-cap", defaultMaxFrameLen + 1, 0},
		{"below-header", frameHdrLen - 1, 0},
		{"zero-length", 0, 0},
		{"just-over-configured-cap", 1<<16 + 1, 1 << 16},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr, err := NewTCPTransportOpts(2, 2, TCPOptions{MaxFrameLen: tc.maxFrame})
			if err != nil {
				t.Fatal(err)
			}
			defer tr.Close()
			c, err := net.Dial("tcp", tr.Addr(1).String())
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			if _, err := c.Write(encodeHello(0, 1)); err != nil {
				t.Fatal(err)
			}
			var hdr [4]byte
			binary.LittleEndian.PutUint32(hdr[:], tc.claim)
			if _, err := c.Write(hdr[:]); err != nil {
				t.Fatal(err)
			}
			deadline := time.Now().Add(5 * time.Second)
			for tr.CorruptFrames() == 0 {
				if time.Now().After(deadline) {
					t.Fatalf("corrupt %d-byte length claim never rejected", tc.claim)
				}
				time.Sleep(time.Millisecond)
			}
		})
	}
}

// TestTCPPartialWriteResyncViaGeneration breaks a connection mid-frame —
// the silent-desync scenario — and proves the generation handshake brings
// the link back: the redial's fresh generation supersedes the broken
// stream at a clean frame boundary, counted in Resyncs.
func TestTCPPartialWriteResyncViaGeneration(t *testing.T) {
	tr, err := NewTCPTransport(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	// Establish generation 1, then die ten bytes into a frame: the peer's
	// read loop is now mid-frame with no way to find the next boundary.
	tc, err := tr.connTo(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	frame := encodeFrame(Message{From: 0, To: 1, Gradient: "doomed", Step: 1,
		Payload: make([]byte, 64)}, tc.gen)
	if _, err := tc.c.Write(frame[:10]); err != nil {
		t.Fatal(err)
	}
	// Wait for the receiver to admit generation 1 before breaking the
	// connection, so the redial below is an observable supersession rather
	// than racing the first handshake.
	deadline := time.Now().Add(5 * time.Second)
	for {
		tr.mu.Lock()
		g := tr.lastGen[[2]int{0, 1}]
		tr.mu.Unlock()
		if g == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("generation 1 never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	tr.dropConn(0, 1, tc) // what Send's error path does after a failed write
	// The next Send redials with generation 2; the receiver must resync
	// onto it and deliver cleanly.
	if err := tr.Send(Message{From: 0, To: 1, Gradient: "after", Step: 2}); err != nil {
		t.Fatalf("send after partial-write drop: %v", err)
	}
	got, ok := tr.Recv(1)
	if !ok || got.Gradient != "after" || got.Step != 2 {
		t.Fatalf("resynced delivery = %+v ok=%v", got, ok)
	}
	st := tr.Stats()
	if st.Resyncs != 1 {
		t.Fatalf("Resyncs = %d, want 1 (stats %+v)", st.Resyncs, st)
	}
	if st.Dials != 2 {
		t.Fatalf("Dials = %d, want 2", st.Dials)
	}
}

// TestTCPStaleGenerationRejected replays an already-used generation from an
// impostor connection: the handshake must reject it without disturbing the
// live stream.
func TestTCPStaleGenerationRejected(t *testing.T) {
	tr, err := NewTCPTransport(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if err := tr.Send(Message{From: 0, To: 1, Gradient: "live", Step: 1}); err != nil {
		t.Fatal(err)
	}
	if got, ok := tr.Recv(1); !ok || got.Gradient != "live" {
		t.Fatalf("live delivery = %+v ok=%v", got, ok)
	}
	// Impostor replays generation 1 on link 0→1 and tries to inject.
	c, err := net.Dial("tcp", tr.Addr(1).String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Write(encodeHello(0, 1))
	c.Write(encodeFrame(Message{From: 0, To: 1, Gradient: "stale", Step: 99}, 1))
	deadline := time.Now().Add(5 * time.Second)
	for tr.Stats().StaleConns == 0 {
		if time.Now().After(deadline) {
			t.Fatal("stale-generation handshake never rejected")
		}
		time.Sleep(time.Millisecond)
	}
	// The original generation-1 stream still works and the injected frame
	// never surfaces.
	if err := tr.Send(Message{From: 0, To: 1, Gradient: "live2", Step: 2}); err != nil {
		t.Fatal(err)
	}
	got, ok := tr.Recv(1)
	if !ok || got.Gradient != "live2" {
		t.Fatalf("post-replay delivery = %+v ok=%v (stale frame leaked?)", got, ok)
	}
}

// TestTCPHalfOpenIdleReadDeadline covers the half-open failure: a peer that
// completes TCP and the HELLO but never sends a frame must be killed by the
// idle read deadline, not wedge a read goroutine forever.
func TestTCPHalfOpenIdleReadDeadline(t *testing.T) {
	tr, err := NewTCPTransportOpts(2, 2, TCPOptions{
		IdleReadTimeout: 80 * time.Millisecond, HandshakeTimeout: 500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	c, err := net.Dial("tcp", tr.Addr(0).String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write(encodeHello(1, 1)); err != nil {
		t.Fatal(err)
	}
	// ...and now hold the socket open in silence.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := tr.Stats()
		if st.IdleDrops == 1 && st.ActiveConns == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("half-open connection never idle-dropped: %+v", tr.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestTCPHandshakeTimeout covers the pre-HELLO variant: a connection that
// never says hello is dropped by the handshake deadline.
func TestTCPHandshakeTimeout(t *testing.T) {
	tr, err := NewTCPTransportOpts(2, 2, TCPOptions{HandshakeTimeout: 60 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	c, err := net.Dial("tcp", tr.Addr(0).String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	deadline := time.Now().Add(5 * time.Second)
	for tr.Stats().HandshakeRejects == 0 {
		if time.Now().After(deadline) {
			t.Fatal("mute connection never handshake-rejected")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestTCPTransportCloseLeaksNoGoroutines is the goleak-style accounting:
// after Close returns, every transport goroutine — accept loops, read
// loops, even one servicing a half-open external peer — must be gone.
func TestTCPTransportCloseLeaksNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	tr, err := NewTCPTransportOpts(3, 8, TCPOptions{IdleReadTimeout: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := tr.Send(Message{From: 0, To: 1, Gradient: "g", Step: i}); err != nil {
			t.Fatal(err)
		}
		if _, ok := tr.Recv(1); !ok {
			t.Fatal("recv failed")
		}
	}
	// A half-open external peer that will never FIN: Close must force it.
	c, err := net.Dial("tcp", tr.Addr(2).String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write(encodeHello(9, 1)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for tr.Stats().ActiveConns < 2 { // 0→1 traffic conn + the half-open one
		if time.Now().After(deadline) {
			t.Fatalf("connections never registered: %+v", tr.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	tr.Close()
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked after Close: %d > %d\n%s",
				runtime.NumGoroutine(), before, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestTCPTransportStalledPeer proves Send does not wedge forever when the
// destination never drains its inbox or socket: once the kernel buffers
// fill, Send must surface a typed ConnError that still unwraps to a
// net.Error timeout. Redial is disabled because every redial gets a fresh
// pair of kernel socket buffers, which would keep absorbing writes for an
// app-level-stalled (but kernel-healthy) peer.
func TestTCPTransportStalledPeer(t *testing.T) {
	tr, err := NewTCPTransportOpts(2, 1, TCPOptions{RedialAttempts: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	tr.SetWriteTimeout(200 * time.Millisecond)
	payload := make([]byte, 4<<20)
	deadline := time.Now().Add(30 * time.Second)
	for i := 0; ; i++ {
		if time.Now().After(deadline) {
			t.Fatal("Send never timed out against a stalled peer")
		}
		err := tr.Send(Message{From: 0, To: 1, Gradient: "big", Step: i, Payload: payload})
		if err == nil {
			continue // kernel buffers still absorbing
		}
		var cerr *ConnError
		if !errors.As(err, &cerr) || !cerr.Timeout {
			t.Fatalf("expected *ConnError with Timeout, got %v", err)
		}
		var nerr net.Error
		if !errors.As(err, &nerr) || !nerr.Timeout() {
			t.Fatalf("ConnError does not unwrap to a net.Error timeout: %v", err)
		}
		break
	}
	// The wedged connection was dropped; after the peer starts draining, a
	// fresh Send must succeed over a redialed connection.
	go func() {
		for {
			if _, ok := tr.Recv(1); !ok {
				return
			}
		}
	}()
	if err := tr.Send(Message{From: 0, To: 1, Gradient: "after", Payload: []byte{1}}); err != nil {
		t.Fatalf("send after redial: %v", err)
	}
}

// TestTCPTransportCloseRacesSend exercises Close concurrent with in-flight
// Sends: no panics, no deadlocks, and double Close stays safe.
func TestTCPTransportCloseRacesSend(t *testing.T) {
	for trial := 0; trial < 5; trial++ {
		tr, err := NewTCPTransport(3, 4)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for src := 0; src < 3; src++ {
			wg.Add(1)
			go func(src int) {
				defer wg.Done()
				for i := 0; i < 50; i++ {
					_ = tr.Send(Message{From: src, To: (src + 1) % 3, Gradient: "g", Step: i,
						Payload: []byte{byte(i)}})
				}
			}(src)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr.Close()
			tr.Close()
		}()
		wg.Wait()
	}
}
