package netsim

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

func TestTCPTransportRoundTrip(t *testing.T) {
	tr, err := NewTCPTransport(3, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if tr.Nodes() != 3 {
		t.Fatalf("Nodes = %d", tr.Nodes())
	}
	want := Message{From: 0, To: 2, Gradient: "layer7/p3", Step: 42, Payload: []byte{9, 8, 7, 6}}
	if err := tr.Send(want); err != nil {
		t.Fatal(err)
	}
	got, ok := tr.Recv(2)
	if !ok {
		t.Fatal("Recv returned !ok")
	}
	if got.From != 0 || got.To != 2 || got.Gradient != want.Gradient || got.Step != 42 ||
		string(got.Payload) != string(want.Payload) {
		t.Fatalf("Recv = %+v", got)
	}
}

func TestTCPTransportEmptyPayloadAndGradient(t *testing.T) {
	tr, err := NewTCPTransport(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if err := tr.Send(Message{From: 0, To: 1}); err != nil {
		t.Fatal(err)
	}
	got, ok := tr.Recv(1)
	if !ok || got.Gradient != "" || len(got.Payload) != 0 {
		t.Fatalf("empty message mangled: %+v ok=%v", got, ok)
	}
}

func TestTCPTransportFIFOPerPair(t *testing.T) {
	tr, err := NewTCPTransport(2, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	for i := 0; i < 32; i++ {
		if err := tr.Send(Message{From: 0, To: 1, Step: i, Payload: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 32; i++ {
		m, ok := tr.Recv(1)
		if !ok || m.Step != i {
			t.Fatalf("out of order at %d: %+v ok=%v", i, m, ok)
		}
	}
}

func TestTCPTransportConcurrentMesh(t *testing.T) {
	const n, per = 4, 25
	tr, err := NewTCPTransport(n, n*per)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	var wg sync.WaitGroup
	for src := 0; src < n; src++ {
		wg.Add(1)
		go func(src int) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				for dst := 0; dst < n; dst++ {
					msg := Message{From: src, To: dst, Gradient: fmt.Sprintf("g%d", src), Step: k,
						Payload: []byte{byte(src), byte(k)}}
					if err := tr.Send(msg); err != nil {
						t.Errorf("send: %v", err)
						return
					}
				}
			}
		}(src)
	}
	counts := make([]int, n)
	var rg sync.WaitGroup
	for node := 0; node < n; node++ {
		rg.Add(1)
		go func(node int) {
			defer rg.Done()
			for i := 0; i < n*per; i++ {
				m, ok := tr.Recv(node)
				if !ok {
					t.Errorf("node %d closed early", node)
					return
				}
				if m.To != node {
					t.Errorf("node %d got message for %d", node, m.To)
					return
				}
				counts[node]++
			}
		}(node)
	}
	wg.Wait()
	rg.Wait()
	for node, c := range counts {
		if c != n*per {
			t.Fatalf("node %d got %d messages, want %d", node, c, n*per)
		}
	}
}

func TestTCPTransportInvalidAddressAndClose(t *testing.T) {
	tr, err := NewTCPTransport(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Send(Message{From: 0, To: 9}); err == nil {
		t.Fatal("send to invalid node accepted")
	}
	if _, ok := tr.Recv(-1); ok {
		t.Fatal("recv on invalid node returned ok")
	}
	tr.Close()
	tr.Close() // double close must be safe
	if err := tr.Send(Message{From: 0, To: 1}); err == nil {
		t.Fatal("send after close accepted")
	}
	if _, ok := tr.Recv(0); ok {
		t.Fatal("recv after close with empty inbox returned ok")
	}
}

func TestTCPTransportLargePayload(t *testing.T) {
	tr, err := NewTCPTransport(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	payload := make([]byte, 1<<20)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	if err := tr.Send(Message{From: 0, To: 1, Gradient: "big", Payload: payload}); err != nil {
		t.Fatal(err)
	}
	got, ok := tr.Recv(1)
	if !ok || len(got.Payload) != len(payload) {
		t.Fatalf("large payload: len=%d ok=%v", len(got.Payload), ok)
	}
	for i := range payload {
		if got.Payload[i] != payload[i] {
			t.Fatalf("payload corrupted at %d", i)
		}
	}
}

func TestFrameCodecProperties(t *testing.T) {
	cases := []Message{
		{From: 0, To: 1},
		{From: 3, To: 2, Gradient: "w", Step: 1 << 30, Payload: []byte{1}},
		{From: 15, To: 0, Gradient: string(make([]byte, 300)), Payload: make([]byte, 5000)},
		{From: 1, To: 0, Gradient: "g", Step: 7, Attempt: 3, Ack: true, Sum: 0xdeadbeef},
	}
	for i, msg := range cases {
		frame := encodeFrame(msg)
		dec, err := decodeFrame(frame[4:])
		if err != nil {
			t.Fatalf("case %d: decode failed: %v", i, err)
		}
		if dec.From != msg.From || dec.To != msg.To || dec.Step != msg.Step ||
			dec.Gradient != msg.Gradient || string(dec.Payload) != string(msg.Payload) ||
			dec.Attempt != msg.Attempt || dec.Ack != msg.Ack || dec.Sum != msg.Sum {
			t.Fatalf("case %d: round trip mismatch: %+v vs %+v", i, dec, msg)
		}
	}
	if _, err := decodeFrame([]byte{1, 2}); err == nil {
		t.Fatal("short frame accepted")
	}
	// Header claiming a longer gradient than the frame holds.
	bad := encodeFrame(Message{From: 0, To: 1, Gradient: "abc"})
	bad[4+23] = 0xFF // corrupt gradLen (gradLen sits at body offset 23)
	if _, err := decodeFrame(bad[4:]); err == nil {
		t.Fatal("corrupt gradLen accepted")
	}
	// Unknown flag bits must be rejected, not silently ignored.
	bad2 := encodeFrame(Message{From: 0, To: 1, Gradient: "x"})
	bad2[4+22] = 0x80
	if _, err := decodeFrame(bad2[4:]); err == nil {
		t.Fatal("unknown flags accepted")
	}
}

// TestTCPTransportStalledPeer proves Send does not wedge forever when the
// destination never drains its inbox or socket: once the kernel buffers
// fill, Send must return a net.Error timeout.
func TestTCPTransportStalledPeer(t *testing.T) {
	tr, err := NewTCPTransport(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	tr.SetWriteTimeout(200 * time.Millisecond)
	payload := make([]byte, 4<<20)
	deadline := time.Now().Add(30 * time.Second)
	for i := 0; ; i++ {
		if time.Now().After(deadline) {
			t.Fatal("Send never timed out against a stalled peer")
		}
		err := tr.Send(Message{From: 0, To: 1, Gradient: "big", Step: i, Payload: payload})
		if err == nil {
			continue // kernel buffers still absorbing
		}
		var nerr net.Error
		if !errors.As(err, &nerr) || !nerr.Timeout() {
			t.Fatalf("expected net.Error timeout, got %v", err)
		}
		break
	}
	// The wedged connection was dropped; after the peer starts draining, a
	// fresh Send must succeed over a redialed connection.
	go func() {
		for {
			if _, ok := tr.Recv(1); !ok {
				return
			}
		}
	}()
	if err := tr.Send(Message{From: 0, To: 1, Gradient: "after", Payload: []byte{1}}); err != nil {
		t.Fatalf("send after redial: %v", err)
	}
}

// TestTCPTransportCloseRacesSend exercises Close concurrent with in-flight
// Sends: no panics, no deadlocks, and double Close stays safe.
func TestTCPTransportCloseRacesSend(t *testing.T) {
	for trial := 0; trial < 5; trial++ {
		tr, err := NewTCPTransport(3, 4)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for src := 0; src < 3; src++ {
			wg.Add(1)
			go func(src int) {
				defer wg.Done()
				for i := 0; i < 50; i++ {
					_ = tr.Send(Message{From: src, To: (src + 1) % 3, Gradient: "g", Step: i,
						Payload: []byte{byte(i)}})
				}
			}(src)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr.Close()
			tr.Close()
		}()
		wg.Wait()
	}
}
