package netsim

import (
	"fmt"
	"sync"
	"testing"
)

func TestTCPTransportRoundTrip(t *testing.T) {
	tr, err := NewTCPTransport(3, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if tr.Nodes() != 3 {
		t.Fatalf("Nodes = %d", tr.Nodes())
	}
	want := Message{From: 0, To: 2, Gradient: "layer7/p3", Step: 42, Payload: []byte{9, 8, 7, 6}}
	if err := tr.Send(want); err != nil {
		t.Fatal(err)
	}
	got, ok := tr.Recv(2)
	if !ok {
		t.Fatal("Recv returned !ok")
	}
	if got.From != 0 || got.To != 2 || got.Gradient != want.Gradient || got.Step != 42 ||
		string(got.Payload) != string(want.Payload) {
		t.Fatalf("Recv = %+v", got)
	}
}

func TestTCPTransportEmptyPayloadAndGradient(t *testing.T) {
	tr, err := NewTCPTransport(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if err := tr.Send(Message{From: 0, To: 1}); err != nil {
		t.Fatal(err)
	}
	got, ok := tr.Recv(1)
	if !ok || got.Gradient != "" || len(got.Payload) != 0 {
		t.Fatalf("empty message mangled: %+v ok=%v", got, ok)
	}
}

func TestTCPTransportFIFOPerPair(t *testing.T) {
	tr, err := NewTCPTransport(2, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	for i := 0; i < 32; i++ {
		if err := tr.Send(Message{From: 0, To: 1, Step: i, Payload: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 32; i++ {
		m, ok := tr.Recv(1)
		if !ok || m.Step != i {
			t.Fatalf("out of order at %d: %+v ok=%v", i, m, ok)
		}
	}
}

func TestTCPTransportConcurrentMesh(t *testing.T) {
	const n, per = 4, 25
	tr, err := NewTCPTransport(n, n*per)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	var wg sync.WaitGroup
	for src := 0; src < n; src++ {
		wg.Add(1)
		go func(src int) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				for dst := 0; dst < n; dst++ {
					msg := Message{From: src, To: dst, Gradient: fmt.Sprintf("g%d", src), Step: k,
						Payload: []byte{byte(src), byte(k)}}
					if err := tr.Send(msg); err != nil {
						t.Errorf("send: %v", err)
						return
					}
				}
			}
		}(src)
	}
	counts := make([]int, n)
	var rg sync.WaitGroup
	for node := 0; node < n; node++ {
		rg.Add(1)
		go func(node int) {
			defer rg.Done()
			for i := 0; i < n*per; i++ {
				m, ok := tr.Recv(node)
				if !ok {
					t.Errorf("node %d closed early", node)
					return
				}
				if m.To != node {
					t.Errorf("node %d got message for %d", node, m.To)
					return
				}
				counts[node]++
			}
		}(node)
	}
	wg.Wait()
	rg.Wait()
	for node, c := range counts {
		if c != n*per {
			t.Fatalf("node %d got %d messages, want %d", node, c, n*per)
		}
	}
}

func TestTCPTransportInvalidAddressAndClose(t *testing.T) {
	tr, err := NewTCPTransport(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Send(Message{From: 0, To: 9}); err == nil {
		t.Fatal("send to invalid node accepted")
	}
	if _, ok := tr.Recv(-1); ok {
		t.Fatal("recv on invalid node returned ok")
	}
	tr.Close()
	tr.Close() // double close must be safe
	if err := tr.Send(Message{From: 0, To: 1}); err == nil {
		t.Fatal("send after close accepted")
	}
	if _, ok := tr.Recv(0); ok {
		t.Fatal("recv after close with empty inbox returned ok")
	}
}

func TestTCPTransportLargePayload(t *testing.T) {
	tr, err := NewTCPTransport(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	payload := make([]byte, 1<<20)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	if err := tr.Send(Message{From: 0, To: 1, Gradient: "big", Payload: payload}); err != nil {
		t.Fatal(err)
	}
	got, ok := tr.Recv(1)
	if !ok || len(got.Payload) != len(payload) {
		t.Fatalf("large payload: len=%d ok=%v", len(got.Payload), ok)
	}
	for i := range payload {
		if got.Payload[i] != payload[i] {
			t.Fatalf("payload corrupted at %d", i)
		}
	}
}

func TestFrameCodecProperties(t *testing.T) {
	cases := []Message{
		{From: 0, To: 1},
		{From: 3, To: 2, Gradient: "w", Step: 1 << 30, Payload: []byte{1}},
		{From: 15, To: 0, Gradient: string(make([]byte, 300)), Payload: make([]byte, 5000)},
	}
	for i, msg := range cases {
		frame := encodeFrame(msg)
		dec, ok := decodeFrame(frame[4:])
		if !ok {
			t.Fatalf("case %d: decode failed", i)
		}
		if dec.From != msg.From || dec.To != msg.To || dec.Step != msg.Step ||
			dec.Gradient != msg.Gradient || string(dec.Payload) != string(msg.Payload) {
			t.Fatalf("case %d: round trip mismatch", i)
		}
	}
	if _, ok := decodeFrame([]byte{1, 2}); ok {
		t.Fatal("short frame accepted")
	}
	// Header claiming a longer gradient than the frame holds.
	bad := encodeFrame(Message{From: 0, To: 1, Gradient: "abc"})
	bad[20] = 0xFF // corrupt gradLen
	if _, ok := decodeFrame(bad[4:]); ok {
		t.Fatal("corrupt gradLen accepted")
	}
}
