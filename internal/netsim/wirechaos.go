package netsim

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// WireChaos is the socket plane's fault injector. Where ChaosTransport
// perturbs whole messages, WireChaos wraps the real net.Conn under the
// framing layer and breaks the byte stream itself — faults the
// message-level injector structurally cannot express:
//
//   - mid-stream cuts: the connection is severed partway through a frame
//     (SetLinger(0) turns the close into an RST), leaving the receiver
//     holding a truncated frame;
//   - byte corruption: one wire byte is flipped in flight, so the frame
//     decodes to garbage (or the length prefix claims gigabytes);
//   - stalls: a write parks for a configured duration, exercising write
//     deadlines and the health plane's RTT estimators;
//   - one-way partitions: writes on a directed link are silently
//     swallowed while the reverse direction still works (the classic
//     half-open failure);
//   - accept-time blackouts: a node's listener completes the TCP handshake
//     but the connection is closed before service, so dialers see an
//     established-then-dead socket.
//
// All faults are a pure function of (Seed, link, connection generation):
// two transports configured identically inject identically, independent of
// scheduling. Per-connection fault points are drawn once at wrap time.
type WireChaosConfig struct {
	// Seed drives every deterministic draw.
	Seed uint64
	// CutProb is the per-connection probability of a mid-stream cut.
	CutProb float64
	// CutAfterMin/Max bound where the cut lands, in bytes written on the
	// connection (HELLO included). The cut point is drawn uniformly from
	// [CutAfterMin, CutAfterMax]; defaults [helloLen+1, helloLen+4096] so
	// the handshake itself always survives and the cut truncates a frame.
	CutAfterMin, CutAfterMax int
	// CorruptProb is the per-connection probability of flipping one wire
	// byte at an offset drawn from [helloLen, helloLen+CorruptWindow)
	// (default window 4096). The HELLO is never corrupted: a poisoned
	// generation in the handshake could wedge the link's admission state
	// forever, which is a different failure class than wire noise.
	CorruptProb   float64
	CorruptWindow int
	// StallProb is the per-connection probability that one write parks for
	// StallFor before proceeding (default 50ms).
	StallProb float64
	StallFor  time.Duration
	// OneWay blackholes every write on the listed directed links: the
	// write claims success but no byte leaves.
	OneWay map[Link]bool
	// AcceptBlackout[node] closes that node's first N accepted connections
	// immediately after the TCP handshake.
	AcceptBlackout map[int]int
}

// WireChaosStats counts injected wire-level faults.
type WireChaosStats struct {
	Conns            int64 // connections wrapped
	Cuts             int64 // mid-stream cuts injected
	CorruptedBytes   int64 // wire bytes flipped
	Stalls           int64 // stalled writes
	BlackholedWrites int64 // writes swallowed by one-way partitions
	AcceptDrops      int64 // accepted connections blacked out
}

// wireChaos is the transport-internal injector state. All methods are safe
// on a nil receiver (the no-chaos fast path).
type wireChaos struct {
	cfg   WireChaosConfig
	stats WireChaosStats // fields updated atomically

	mu         sync.Mutex
	acceptSeen map[int]int // accepts consumed per node (blackout budget)
}

// newWireChaos builds the injector; nil config disables it.
func newWireChaos(cfg *WireChaosConfig) *wireChaos {
	if cfg == nil {
		return nil
	}
	c := *cfg
	if c.CutAfterMin <= 0 {
		c.CutAfterMin = helloLen + 1
	}
	if c.CutAfterMax < c.CutAfterMin {
		c.CutAfterMax = c.CutAfterMin + 4096
	}
	if c.CorruptWindow <= 0 {
		c.CorruptWindow = 4096
	}
	if c.StallFor <= 0 {
		c.StallFor = 50 * time.Millisecond
	}
	return &wireChaos{cfg: c, acceptSeen: map[int]int{}}
}

// snapshot returns the counters (nil when chaos is off).
func (w *wireChaos) snapshot() *WireChaosStats {
	if w == nil {
		return nil
	}
	return &WireChaosStats{
		Conns:            atomic.LoadInt64(&w.stats.Conns),
		Cuts:             atomic.LoadInt64(&w.stats.Cuts),
		CorruptedBytes:   atomic.LoadInt64(&w.stats.CorruptedBytes),
		Stalls:           atomic.LoadInt64(&w.stats.Stalls),
		BlackholedWrites: atomic.LoadInt64(&w.stats.BlackholedWrites),
		AcceptDrops:      atomic.LoadInt64(&w.stats.AcceptDrops),
	}
}

// acceptDrop reports whether this accept on node falls inside the node's
// blackout budget.
func (w *wireChaos) acceptDrop(node int) bool {
	if w == nil || len(w.cfg.AcceptBlackout) == 0 {
		return false
	}
	budget, ok := w.cfg.AcceptBlackout[node]
	if !ok {
		return false
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.acceptSeen[node] >= budget {
		return false
	}
	w.acceptSeen[node]++
	atomic.AddInt64(&w.stats.AcceptDrops, 1)
	return true
}

// hash draws one 64-bit value from the (seed, link, gen, salt) stream.
func (w *wireChaos) hash(l Link, gen uint32, salt uint64) uint64 {
	h := splitmix64(w.cfg.Seed ^ salt)
	h = splitmix64(h ^ uint64(uint32(l.Src))<<32 ^ uint64(uint32(l.Dst)))
	return splitmix64(h ^ uint64(gen))
}

// wireRoll maps a hash to [0, 1).
func wireRoll(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// wrap decorates a dialed connection with this link+generation's planned
// faults. Returns c unchanged when chaos is off or nothing is planned.
func (w *wireChaos) wrap(c net.Conn, l Link, gen uint32) net.Conn {
	if w == nil {
		return c
	}
	wc := &wireConn{Conn: c, chaos: w, link: l}
	planned := false
	if wireRoll(w.hash(l, gen, 0xd30c_0001)) < w.cfg.CutProb {
		span := w.cfg.CutAfterMax - w.cfg.CutAfterMin + 1
		wc.cutAt = w.cfg.CutAfterMin + int(w.hash(l, gen, 0xd30c_0002)%uint64(span))
		planned = true
	}
	if wireRoll(w.hash(l, gen, 0xd30c_0003)) < w.cfg.CorruptProb {
		wc.corruptAt = helloLen + int(w.hash(l, gen, 0xd30c_0004)%uint64(w.cfg.CorruptWindow))
		planned = true
	}
	if wireRoll(w.hash(l, gen, 0xd30c_0005)) < w.cfg.StallProb {
		wc.stallAt = true
		planned = true
	}
	if w.cfg.OneWay[l] {
		wc.oneway = true
		planned = true
	}
	atomic.AddInt64(&w.stats.Conns, 1)
	if !planned {
		return c
	}
	return wc
}

// wireConn implements the planned faults on the write path. Writes on one
// connection are serialized by the transport (the dial lock for the HELLO,
// then the per-connection write mutex for frames), so the off counter needs
// no further synchronization.
type wireConn struct {
	net.Conn
	chaos *wireChaos
	link  Link

	cutAt     int  // sever after this many bytes (0 = never)
	corruptAt int  // flip the byte at this offset (0 = never; HELLO excluded)
	stallAt   bool // park the first frame write once
	oneway    bool // swallow every write

	off int // bytes accounted so far
	cut bool
}

// Write applies the fault plan, then forwards to the real socket.
func (c *wireConn) Write(b []byte) (int, error) {
	if c.oneway {
		// One-way partition: the write "succeeds" but nothing leaves.
		atomic.AddInt64(&c.chaos.stats.BlackholedWrites, 1)
		c.off += len(b)
		return len(b), nil
	}
	if c.cut {
		return 0, fmt.Errorf("netsim: wire chaos: connection %d→%d already cut", c.link.Src, c.link.Dst)
	}
	if c.stallAt && c.off >= helloLen {
		c.stallAt = false
		atomic.AddInt64(&c.chaos.stats.Stalls, 1)
		time.Sleep(c.chaos.cfg.StallFor)
	}
	if c.corruptAt > 0 && c.off <= c.corruptAt && c.corruptAt < c.off+len(b) {
		// Flip one byte on a copy — the caller's frame buffer may be
		// retransmitted intact after the redial.
		dirty := append([]byte(nil), b...)
		dirty[c.corruptAt-c.off] ^= 0x20
		atomic.AddInt64(&c.chaos.stats.CorruptedBytes, 1)
		c.corruptAt = 0
		b = dirty
	}
	if c.cutAt > 0 && c.off+len(b) > c.cutAt {
		// Sever mid-frame: deliver the prefix, then RST.
		prefix := c.cutAt - c.off
		if prefix > 0 {
			c.Conn.Write(b[:prefix])
		}
		c.cut = true
		atomic.AddInt64(&c.chaos.stats.Cuts, 1)
		if tc, ok := c.Conn.(*net.TCPConn); ok {
			tc.SetLinger(0) // close sends RST, discarding buffered bytes
		}
		c.Conn.Close()
		return prefix, fmt.Errorf("netsim: wire chaos: cut connection %d→%d after %d bytes",
			c.link.Src, c.link.Dst, c.cutAt)
	}
	n, err := c.Conn.Write(b)
	c.off += n
	return n, err
}
