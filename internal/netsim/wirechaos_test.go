package netsim

import (
	"errors"
	"net"
	"testing"
	"time"
)

// TestWireChaosPlanDeterminism: the fault plan is a pure function of
// (seed, link, generation) — two injectors configured identically plan
// identically, and a different seed plans differently somewhere.
func TestWireChaosPlanDeterminism(t *testing.T) {
	cfg := &WireChaosConfig{Seed: 42, CutProb: 0.5, CorruptProb: 0.5, StallProb: 0.5}
	a, b := newWireChaos(cfg), newWireChaos(cfg)
	diff := false
	other := newWireChaos(&WireChaosConfig{Seed: 43, CutProb: 0.5, CorruptProb: 0.5, StallProb: 0.5})
	for gen := uint32(1); gen <= 32; gen++ {
		l := Link{Src: int(gen % 3), Dst: int(gen % 5)}
		pa := planOf(a, l, gen)
		pb := planOf(b, l, gen)
		if pa != pb {
			t.Fatalf("gen %d: identical configs planned differently: %+v vs %+v", gen, pa, pb)
		}
		if pa != planOf(other, l, gen) {
			diff = true
		}
	}
	if !diff {
		t.Fatal("reseeded injector planned identically across 32 generations")
	}
}

type wirePlan struct {
	cutAt, corruptAt int
	stall, oneway    bool
}

// planOf extracts the fault plan wrap would install, via a pipe-backed conn.
func planOf(w *wireChaos, l Link, gen uint32) wirePlan {
	c := w.wrap(fakeConn{}, l, gen)
	if wc, ok := c.(*wireConn); ok {
		return wirePlan{cutAt: wc.cutAt, corruptAt: wc.corruptAt, stall: wc.stallAt, oneway: wc.oneway}
	}
	return wirePlan{}
}

// fakeConn is a no-op net.Conn for plan extraction.
type fakeConn struct{}

func (fakeConn) Read(b []byte) (int, error)       { return 0, nil }
func (fakeConn) Write(b []byte) (int, error)      { return len(b), nil }
func (fakeConn) Close() error                     { return nil }
func (fakeConn) LocalAddr() net.Addr              { return nil }
func (fakeConn) RemoteAddr() net.Addr             { return nil }
func (fakeConn) SetDeadline(time.Time) error      { return nil }
func (fakeConn) SetReadDeadline(time.Time) error  { return nil }
func (fakeConn) SetWriteDeadline(time.Time) error { return nil }

// TestWireChaosCutSurfacesConnError: with every connection cut mid-frame
// and no redial budget, Send must fail with the typed *ConnError and the
// injector must account the cut.
func TestWireChaosCutSurfacesConnError(t *testing.T) {
	tr, err := NewTCPTransportOpts(2, 4, TCPOptions{
		RedialAttempts: -1, // disable redial: surface the first failure
		Chaos: &WireChaosConfig{Seed: 7, CutProb: 1,
			CutAfterMin: helloLen + 5, CutAfterMax: helloLen + 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	err = tr.Send(Message{From: 0, To: 1, Gradient: "g", Payload: make([]byte, 256)})
	if err == nil {
		t.Fatal("send over a cut wire succeeded")
	}
	var cerr *ConnError
	if !errors.As(err, &cerr) {
		t.Fatalf("expected *ConnError, got %v", err)
	}
	ws := tr.WireStats()
	if ws == nil || ws.Cuts != 1 {
		t.Fatalf("WireStats = %+v, want 1 cut", ws)
	}
	if tr.Stats().Redials != 0 {
		t.Fatalf("redials spent with RedialAttempts disabled: %+v", tr.Stats())
	}
}

// TestWireChaosRedialRecoversFromCut: with a redial budget, a mid-frame cut
// on one generation is absorbed — a later generation's connection draws a
// cut point beyond the frame and the message lands, with the resync
// counted.
func TestWireChaosRedialRecoversFromCut(t *testing.T) {
	// Seed 1 at CutProb 0.5 plans a cut for link 0→1's generation 1 and
	// none for generation 2 (fault plans are a pure function of seed, link,
	// generation — see TestWireChaosPlanDeterminism), so this passes or
	// fails deterministically, never flakes.
	tr, err := NewTCPTransportOpts(2, 4, TCPOptions{
		RedialAttempts: 6,
		Chaos: &WireChaosConfig{Seed: 1, CutProb: 0.5,
			CutAfterMin: helloLen + 5, CutAfterMax: helloLen + 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if err := tr.Send(Message{From: 0, To: 1, Gradient: "g", Step: 5, Payload: []byte{1, 2, 3}}); err != nil {
		t.Fatalf("send never recovered across redials: %v (stats %+v, wire %+v)",
			err, tr.Stats(), tr.WireStats())
	}
	got, ok := tr.Recv(1)
	if !ok || got.Step != 5 {
		t.Fatalf("delivery after cut recovery = %+v ok=%v", got, ok)
	}
	st := tr.Stats()
	ws := tr.WireStats()
	if ws.Cuts == 0 || st.Redials == 0 {
		t.Fatalf("recovery happened without any injected cut? stats %+v wire %+v", st, ws)
	}
}

// TestWireChaosOneWayPartition: writes on the partitioned direction claim
// success but never arrive; the reverse direction still works.
func TestWireChaosOneWayPartition(t *testing.T) {
	tr, err := NewTCPTransportOpts(2, 4, TCPOptions{
		Chaos: &WireChaosConfig{Seed: 3, OneWay: map[Link]bool{{Src: 0, Dst: 1}: true}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if err := tr.Send(Message{From: 0, To: 1, Gradient: "void"}); err != nil {
		t.Fatalf("one-way blackhole surfaced a write error: %v", err)
	}
	if err := tr.Send(Message{From: 1, To: 0, Gradient: "back"}); err != nil {
		t.Fatal(err)
	}
	if got, ok := tr.Recv(0); !ok || got.Gradient != "back" {
		t.Fatalf("reverse direction broken: %+v ok=%v", got, ok)
	}
	select {
	case m := <-tr.inboxes[1]:
		t.Fatalf("blackholed frame arrived: %+v", m)
	case <-time.After(50 * time.Millisecond):
	}
	if ws := tr.WireStats(); ws.BlackholedWrites < 2 { // HELLO + frame
		t.Fatalf("WireStats = %+v, want >= 2 blackholed writes", ws)
	}
}

// TestWireChaosCorruptionDetected: one flipped wire byte inside the length
// prefix must be caught by frame validation, never decoded as data.
func TestWireChaosCorruptionDetected(t *testing.T) {
	tr, err := NewTCPTransportOpts(2, 4, TCPOptions{
		RedialAttempts: -1,
		Chaos: &WireChaosConfig{Seed: 5, CorruptProb: 1,
			CorruptWindow: 1}, // corrupt exactly the first byte after the HELLO: the length prefix
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if err := tr.Send(Message{From: 0, To: 1, Gradient: "g", Payload: []byte{9}}); err != nil {
		t.Fatal(err)
	}
	if ws := tr.WireStats(); ws.CorruptedBytes != 1 {
		t.Fatalf("WireStats = %+v, want exactly 1 corrupted byte", ws)
	}
	// The mangled length prefix must trip validation (a tiny frame's low
	// length byte XOR 0x20 claims a length the stream does not carry).
	deadline := time.Now().Add(5 * time.Second)
	for tr.Stats().CorruptFrames == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("corrupted frame never rejected: %+v", tr.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestWireChaosAcceptBlackout: the first accepted connection on the target
// node dies post-handshake; the dialer's redial budget rides it out.
func TestWireChaosAcceptBlackout(t *testing.T) {
	tr, err := NewTCPTransportOpts(2, 4, TCPOptions{
		RedialAttempts: 3,
		Chaos:          &WireChaosConfig{Seed: 9, AcceptBlackout: map[int]int{1: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	// First Send dials into the blackout: the connection is established,
	// then closed unserviced. The write may land in kernel buffers (and be
	// RST-discarded) or fail; either way the frame is not guaranteed
	// delivered — the live plane's reliable layer re-sends. Here we just
	// need eventual delivery within the redial budget.
	deadline := time.Now().Add(10 * time.Second)
	step := 0
	for {
		if time.Now().After(deadline) {
			t.Fatalf("delivery never recovered from accept blackout: %+v", tr.Stats())
		}
		if err := tr.Send(Message{From: 0, To: 1, Gradient: "g", Step: step}); err == nil {
			if tr.Stats().AcceptDrops > 0 {
				break
			}
		}
		step++
		time.Sleep(time.Millisecond)
	}
	if ws := tr.WireStats(); ws.AcceptDrops != 1 {
		t.Fatalf("WireStats = %+v, want exactly 1 accept drop", ws)
	}
}
