package sim

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Chaos scheduling for the timing plane: straggler and link-outage events
// injected into the discrete-event simulation, so cluster-scale experiments
// can quantify how sensitive compression-enabled training is to faults
// (slow nodes stretch compute/compression kernels; downed links defer
// transfers until the outage window passes).

// FaultKind distinguishes scheduled fault event types.
type FaultKind int

const (
	// FaultStraggler multiplies the duration of every kernel on one node by
	// Factor while active (a thermally throttled GPU, a noisy neighbor).
	FaultStraggler FaultKind = iota
	// FaultLinkDown makes a directed link (or, with Dst < 0, every link
	// touching Src in either direction) unusable during the window:
	// transfers wanting to start inside it are deferred to its end.
	FaultLinkDown
)

// String implements fmt.Stringer.
func (k FaultKind) String() string {
	switch k {
	case FaultStraggler:
		return "straggler"
	case FaultLinkDown:
		return "link-down"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// Fault is one scheduled fault event in virtual time.
type Fault struct {
	Kind FaultKind
	// Node is the straggling node (FaultStraggler).
	Node int
	// Src, Dst name the directed link (FaultLinkDown); Dst < 0 means every
	// link touching Src, both directions — a node-wide network blackout.
	Src, Dst int
	// Factor is the straggler's duration multiplier (> 1 slows down).
	Factor float64
	// Start and Dur bound the active window [Start, Start+Dur) in seconds.
	Start, Dur float64
}

// active reports whether the fault covers virtual time t.
func (f *Fault) active(t float64) bool {
	return t >= f.Start && t < f.Start+f.Dur
}

// end returns the fault's end time.
func (f *Fault) end() float64 { return f.Start + f.Dur }

// String renders the fault in ParseSchedule's grammar.
func (f *Fault) String() string {
	switch f.Kind {
	case FaultStraggler:
		return fmt.Sprintf("slow:%dx%g@%g+%g", f.Node, f.Factor, f.Start, f.Dur)
	case FaultLinkDown:
		if f.Dst < 0 {
			return fmt.Sprintf("down:%d@%g+%g", f.Src, f.Start, f.Dur)
		}
		return fmt.Sprintf("link:%d-%d@%g+%g", f.Src, f.Dst, f.Start, f.Dur)
	default:
		return "?"
	}
}

// ChaosSchedule is the full fault plan of one simulated run.
type ChaosSchedule struct {
	Faults []Fault
}

// Empty reports whether the schedule injects nothing.
func (s *ChaosSchedule) Empty() bool { return s == nil || len(s.Faults) == 0 }

// String renders the schedule in ParseSchedule's grammar.
func (s *ChaosSchedule) String() string {
	if s.Empty() {
		return ""
	}
	parts := make([]string, len(s.Faults))
	for i := range s.Faults {
		parts[i] = s.Faults[i].String()
	}
	return strings.Join(parts, ";")
}

// SlowFactor returns the product of all straggler factors active on node
// at virtual time t (1.0 when healthy). Executors multiply kernel
// durations by it.
func (s *ChaosSchedule) SlowFactor(node int, t float64) float64 {
	if s.Empty() {
		return 1
	}
	factor := 1.0
	for i := range s.Faults {
		f := &s.Faults[i]
		if f.Kind == FaultStraggler && f.Node == node && f.active(t) && f.Factor > 0 {
			factor *= f.Factor
		}
	}
	return factor
}

// DeferStart pushes a transfer's desired start time past every link-outage
// window covering the src→dst link, iterating to a fixed point so
// back-to-back outages chain correctly.
func (s *ChaosSchedule) DeferStart(src, dst int, t float64) float64 {
	if s.Empty() {
		return t
	}
	for moved := true; moved; {
		moved = false
		for i := range s.Faults {
			f := &s.Faults[i]
			if f.Kind != FaultLinkDown || !f.active(t) {
				continue
			}
			hit := false
			if f.Dst < 0 {
				hit = src == f.Src || dst == f.Src
			} else {
				hit = src == f.Src && dst == f.Dst
			}
			if hit && f.end() > t {
				t = f.end()
				moved = true
			}
		}
	}
	return t
}

// MaxNode returns the largest node id any fault references (-1 when
// empty), for validation against cluster size.
func (s *ChaosSchedule) MaxNode() int {
	max := -1
	if s.Empty() {
		return max
	}
	for i := range s.Faults {
		f := &s.Faults[i]
		for _, v := range []int{f.Node, f.Src, f.Dst} {
			if v > max {
				max = v
			}
		}
	}
	return max
}

// Sorted returns the faults ordered by start time (stable copy), for
// reporting.
func (s *ChaosSchedule) Sorted() []Fault {
	if s.Empty() {
		return nil
	}
	out := append([]Fault(nil), s.Faults...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// ParseSchedule parses a compact fault-schedule spec: items separated by
// ';', each one of
//
//	slow:<node>x<factor>@<start>+<dur>   straggler (node ×factor slower)
//	link:<src>-<dst>@<start>+<dur>       directed link outage
//	down:<node>@<start>+<dur>            all links touching node down
//
// with times in (fractional) seconds, e.g.
// "slow:1x2@0+10;link:0-2@0.01+0.05;down:3@0.2+0.1".
func ParseSchedule(spec string) (*ChaosSchedule, error) {
	sched := &ChaosSchedule{}
	for _, item := range strings.Split(spec, ";") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		kind, rest, ok := strings.Cut(item, ":")
		if !ok {
			return nil, fmt.Errorf("sim: chaos item %q: want kind:spec", item)
		}
		body, window, ok := strings.Cut(rest, "@")
		if !ok {
			return nil, fmt.Errorf("sim: chaos item %q: missing @start+dur window", item)
		}
		startS, durS, ok := strings.Cut(window, "+")
		if !ok {
			return nil, fmt.Errorf("sim: chaos item %q: window %q wants start+dur", item, window)
		}
		start, err := strconv.ParseFloat(startS, 64)
		if err != nil || start < 0 {
			return nil, fmt.Errorf("sim: chaos item %q: bad start %q", item, startS)
		}
		dur, err := strconv.ParseFloat(durS, 64)
		if err != nil || dur <= 0 {
			return nil, fmt.Errorf("sim: chaos item %q: bad duration %q", item, durS)
		}
		switch kind {
		case "slow":
			nodeS, facS, ok := strings.Cut(body, "x")
			if !ok {
				return nil, fmt.Errorf("sim: chaos item %q: slow wants node x factor", item)
			}
			node, err := strconv.Atoi(nodeS)
			if err != nil || node < 0 {
				return nil, fmt.Errorf("sim: chaos item %q: bad node %q", item, nodeS)
			}
			fac, err := strconv.ParseFloat(facS, 64)
			if err != nil || fac <= 0 {
				return nil, fmt.Errorf("sim: chaos item %q: bad factor %q", item, facS)
			}
			sched.Faults = append(sched.Faults, Fault{Kind: FaultStraggler, Node: node, Factor: fac, Start: start, Dur: dur})
		case "link":
			srcS, dstS, ok := strings.Cut(body, "-")
			if !ok {
				return nil, fmt.Errorf("sim: chaos item %q: link wants src-dst", item)
			}
			src, err := strconv.Atoi(srcS)
			if err != nil || src < 0 {
				return nil, fmt.Errorf("sim: chaos item %q: bad src %q", item, srcS)
			}
			dst, err := strconv.Atoi(dstS)
			if err != nil || dst < 0 {
				return nil, fmt.Errorf("sim: chaos item %q: bad dst %q", item, dstS)
			}
			sched.Faults = append(sched.Faults, Fault{Kind: FaultLinkDown, Src: src, Dst: dst, Start: start, Dur: dur})
		case "down":
			node, err := strconv.Atoi(strings.TrimSpace(body))
			if err != nil || node < 0 {
				return nil, fmt.Errorf("sim: chaos item %q: bad node %q", item, body)
			}
			sched.Faults = append(sched.Faults, Fault{Kind: FaultLinkDown, Src: node, Dst: -1, Start: start, Dur: dur})
		default:
			return nil, fmt.Errorf("sim: chaos item %q: unknown kind %q (want slow, link, down)", item, kind)
		}
	}
	if len(sched.Faults) == 0 {
		return nil, fmt.Errorf("sim: empty chaos schedule %q", spec)
	}
	return sched, nil
}
