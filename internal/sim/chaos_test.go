package sim

import (
	"math"
	"strings"
	"testing"
)

func TestParseScheduleRoundTrip(t *testing.T) {
	spec := "slow:1x2@0+10;link:0-2@0.01+0.05;down:3@0.2+0.1"
	s, err := ParseSchedule(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Faults) != 3 {
		t.Fatalf("got %d faults, want 3", len(s.Faults))
	}
	if got := s.String(); got != spec {
		t.Fatalf("String() = %q, want %q", got, spec)
	}
	// Re-parsing the rendered form must yield the same schedule.
	s2, err := ParseSchedule(s.String())
	if err != nil {
		t.Fatal(err)
	}
	if s2.String() != spec {
		t.Fatalf("re-parse drifted: %q", s2.String())
	}
	if s.Faults[0].Kind != FaultStraggler || s.Faults[0].Node != 1 || s.Faults[0].Factor != 2 {
		t.Fatalf("straggler mis-parsed: %+v", s.Faults[0])
	}
	if s.Faults[1].Kind != FaultLinkDown || s.Faults[1].Src != 0 || s.Faults[1].Dst != 2 {
		t.Fatalf("link mis-parsed: %+v", s.Faults[1])
	}
	if s.Faults[2].Kind != FaultLinkDown || s.Faults[2].Src != 3 || s.Faults[2].Dst != -1 {
		t.Fatalf("down mis-parsed: %+v", s.Faults[2])
	}
	if got := s.MaxNode(); got != 3 {
		t.Fatalf("MaxNode = %d, want 3", got)
	}
}

func TestParseScheduleErrors(t *testing.T) {
	bad := []string{
		"",                      // empty schedule
		";;",                    // only separators
		"frob:1@0+1",            // unknown kind
		"slow:1@0+1",            // missing factor
		"slow:1x0@0+1",          // non-positive factor
		"slow:-1x2@0+1",         // negative node
		"slow:1x2@0",            // missing duration
		"slow:1x2@-1+1",         // negative start
		"slow:1x2@0+0",          // zero duration
		"link:0@0+1",            // missing dst
		"link:0-x@0+1",          // bad dst
		"link:0--1@0+1",         // negative dst
		"down:x@0+1",            // bad node
		"slow:1x2",              // no window
		"noseparator",           // no kind separator
		"slow:1x2@0+1;link:0-1", // valid then invalid
	}
	for _, spec := range bad {
		if s, err := ParseSchedule(spec); err == nil {
			t.Errorf("ParseSchedule(%q) accepted: %+v", spec, s)
		}
	}
}

func TestSlowFactorProducts(t *testing.T) {
	s, err := ParseSchedule("slow:0x2@0+10;slow:0x3@5+10;slow:1x4@0+1")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		node int
		t    float64
		want float64
	}{
		{0, 0, 2},    // only the first window
		{0, 7, 6},    // both windows overlap: 2*3
		{0, 12, 3},   // first expired
		{0, 20, 1},   // all expired (end exclusive: 15 not covered by [5,15)? 15 is end)
		{1, 0.5, 4},  // node 1's own fault
		{1, 2, 1},    // expired
		{2, 0, 1},    // untouched node
		{0, 10, 3},   // [0,10) end-exclusive: first fault over, second active
		{0, 4.99, 2}, // just before the overlap
	}
	for _, c := range cases {
		if got := s.SlowFactor(c.node, c.t); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("SlowFactor(%d, %g) = %g, want %g", c.node, c.t, got, c.want)
		}
	}
	var nilSched *ChaosSchedule
	if got := nilSched.SlowFactor(0, 0); got != 1 {
		t.Fatalf("nil schedule SlowFactor = %g", got)
	}
}

func TestDeferStartChainsWindows(t *testing.T) {
	// Two back-to-back outages on 0→1: [1,2) then [2,3). A transfer asking
	// to start at 1.5 must chain past both to 3.
	s, err := ParseSchedule("link:0-1@1+1;link:0-1@2+1")
	if err != nil {
		t.Fatal(err)
	}
	if got := s.DeferStart(0, 1, 1.5); got != 3 {
		t.Fatalf("DeferStart chained = %g, want 3", got)
	}
	// Outside the windows: untouched.
	if got := s.DeferStart(0, 1, 0.5); got != 0.5 {
		t.Fatalf("DeferStart before window = %g, want 0.5", got)
	}
	if got := s.DeferStart(0, 1, 3); got != 3 {
		t.Fatalf("DeferStart at end = %g, want 3 (end exclusive)", got)
	}
	// Other direction and other links unaffected.
	if got := s.DeferStart(1, 0, 1.5); got != 1.5 {
		t.Fatalf("reverse direction deferred: %g", got)
	}
	if got := s.DeferStart(0, 2, 1.5); got != 1.5 {
		t.Fatalf("unrelated link deferred: %g", got)
	}
}

func TestDeferStartNodeBlackout(t *testing.T) {
	// down:2 blacks out every link touching node 2, both directions.
	s, err := ParseSchedule("down:2@1+2")
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]int{{2, 0}, {0, 2}, {2, 3}, {3, 2}} {
		if got := s.DeferStart(pair[0], pair[1], 1.5); got != 3 {
			t.Errorf("DeferStart(%d,%d,1.5) = %g, want 3", pair[0], pair[1], got)
		}
	}
	if got := s.DeferStart(0, 1, 1.5); got != 1.5 {
		t.Fatalf("link not touching node 2 deferred: %g", got)
	}
}

func TestScheduleSortedAndString(t *testing.T) {
	s, err := ParseSchedule("link:0-1@5+1;slow:0x2@1+1;down:3@3+1")
	if err != nil {
		t.Fatal(err)
	}
	sorted := s.Sorted()
	if len(sorted) != 3 || sorted[0].Start != 1 || sorted[1].Start != 3 || sorted[2].Start != 5 {
		t.Fatalf("Sorted order wrong: %+v", sorted)
	}
	// Sorted must not mutate the original order.
	if s.Faults[0].Start != 5 {
		t.Fatalf("Sorted mutated the schedule: %+v", s.Faults)
	}
	var empty *ChaosSchedule
	if !empty.Empty() || empty.String() != "" || empty.Sorted() != nil {
		t.Fatal("nil schedule misbehaves")
	}
	for _, f := range sorted {
		if !strings.Contains(s.String(), f.String()) {
			t.Fatalf("String() missing %q: %q", f.String(), s.String())
		}
	}
}
