// Package sim is a small discrete-event simulation kernel. The cluster-scale
// experiments execute CaSync task graphs in virtual time on top of it: GPU
// streams and network links are modeled as serial resources, and every
// encode/decode/merge/send/recv task becomes a timed occupation of one.
//
// The kernel is deliberately minimal — a time-ordered event heap plus serial
// resources — because the paper's timing questions (what overlaps with what,
// where the critical path runs) are entirely questions of ordering and
// occupancy, not of queueing-theoretic detail.
package sim

import "container/heap"

// Time is simulated seconds since the start of the run.
type Time = float64

// event is one scheduled callback.
type event struct {
	at  Time
	seq uint64 // tie-breaker: FIFO among equal timestamps
	fn  func(Time)
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine owns the virtual clock and the pending event set.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time. During Run it is the timestamp of
// the event being executed.
func (e *Engine) Now() Time { return e.now }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it would silently reorder causality, which in a task-graph
// simulation always indicates a bug upstream.
func (e *Engine) At(t Time, fn func(Time)) {
	if t < e.now {
		panic("sim: scheduling into the past")
	}
	e.seq++
	heap.Push(&e.events, event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d seconds from now.
func (e *Engine) After(d float64, fn func(Time)) { e.At(e.now+d, fn) }

// Run executes events in timestamp order until none remain, returning the
// final clock value (the makespan of whatever was simulated).
func (e *Engine) Run() Time {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(event)
		e.now = ev.at
		ev.fn(ev.at)
	}
	return e.now
}

// Pending returns the number of not-yet-executed events; useful for tests
// asserting quiescence.
func (e *Engine) Pending() int { return len(e.events) }

// Resource is a serial FIFO resource (a GPU stream, one direction of a
// network link): work items occupy it back to back, each for its duration.
type Resource struct {
	Name string
	// freeAt is the time at which the resource finishes everything accepted
	// so far.
	freeAt Time
	// busy accumulates total occupied seconds, for utilization accounting
	// (Fig. 9's GPU-utilization comparison).
	busy float64
}

// NewResource returns an idle resource.
func NewResource(name string) *Resource { return &Resource{Name: name} }

// Acquire books the resource for dur seconds starting no earlier than `from`
// and returns the work's start and end times. The caller typically schedules
// its completion callback at the returned end time.
func (r *Resource) Acquire(from Time, dur float64) (start, end Time) {
	if dur < 0 {
		panic("sim: negative duration")
	}
	start = from
	if r.freeAt > start {
		start = r.freeAt
	}
	end = start + dur
	r.freeAt = end
	r.busy += dur
	return start, end
}

// FreeAt returns when the resource becomes idle given work accepted so far.
func (r *Resource) FreeAt() Time { return r.freeAt }

// BusyTime returns the total seconds of occupation accepted so far.
func (r *Resource) BusyTime() float64 { return r.busy }

// Exec is the canonical "run work on a resource" helper: it books dur
// seconds on r no earlier than `from`, and schedules done(end) at the work's
// completion. It returns the booked (start, end).
func Exec(e *Engine, r *Resource, from Time, dur float64, done func(Time)) (Time, Time) {
	start, end := r.Acquire(from, dur)
	if done != nil {
		e.At(end, done)
	}
	return start, end
}

// Span records one occupied interval, used to build utilization timelines.
type Span struct {
	Start, End Time
	Label      string
}

// Tracker collects spans for one resource so experiments can render
// utilization timelines (Fig. 9).
type Tracker struct {
	Spans []Span
}

// Add appends a span.
func (t *Tracker) Add(start, end Time, label string) {
	t.Spans = append(t.Spans, Span{Start: start, End: end, Label: label})
}

// BusyWithin returns the total occupied time intersected with [lo, hi),
// counting overlapping spans once... spans from a serial resource never
// overlap, so a plain sum of clamped spans is exact.
func (t *Tracker) BusyWithin(lo, hi Time) float64 {
	var sum float64
	for _, s := range t.Spans {
		a, b := s.Start, s.End
		if a < lo {
			a = lo
		}
		if b > hi {
			b = hi
		}
		if b > a {
			sum += b - a
		}
	}
	return sum
}
