package sim

import (
	"testing"
	"testing/quick"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(3, func(Time) { order = append(order, 3) })
	e.At(1, func(Time) { order = append(order, 1) })
	e.At(2, func(Time) { order = append(order, 2) })
	end := e.Run()
	if end != 3 {
		t.Fatalf("Run returned %v, want 3", end)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("execution order %v, want %v", order, want)
		}
	}
}

func TestFIFOTieBreak(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(1, func(Time) { order = append(order, i) })
	}
	e.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("same-timestamp events reordered: %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	var hits []Time
	e.At(1, func(now Time) {
		hits = append(hits, now)
		e.After(2, func(now Time) { hits = append(hits, now) })
	})
	e.Run()
	if len(hits) != 2 || hits[0] != 1 || hits[1] != 3 {
		t.Fatalf("nested scheduling produced %v", hits)
	}
}

func TestPastSchedulingPanics(t *testing.T) {
	e := NewEngine()
	e.At(5, func(Time) {
		defer func() {
			if recover() == nil {
				t.Errorf("scheduling into the past did not panic")
			}
		}()
		e.At(1, func(Time) {})
	})
	e.Run()
}

func TestPending(t *testing.T) {
	e := NewEngine()
	e.At(1, func(Time) {})
	e.At(2, func(Time) {})
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", e.Pending())
	}
	e.Run()
	if e.Pending() != 0 {
		t.Fatalf("Pending after Run = %d", e.Pending())
	}
}

func TestResourceSerializes(t *testing.T) {
	r := NewResource("gpu0")
	s1, e1 := r.Acquire(0, 10)
	if s1 != 0 || e1 != 10 {
		t.Fatalf("first acquire = (%v,%v)", s1, e1)
	}
	// Requested at t=5 but the resource is busy until 10.
	s2, e2 := r.Acquire(5, 3)
	if s2 != 10 || e2 != 13 {
		t.Fatalf("second acquire = (%v,%v), want (10,13)", s2, e2)
	}
	// Requested after the resource is already free: starts immediately.
	s3, e3 := r.Acquire(20, 1)
	if s3 != 20 || e3 != 21 {
		t.Fatalf("third acquire = (%v,%v), want (20,21)", s3, e3)
	}
	if r.BusyTime() != 14 {
		t.Fatalf("BusyTime = %v, want 14", r.BusyTime())
	}
	if r.FreeAt() != 21 {
		t.Fatalf("FreeAt = %v, want 21", r.FreeAt())
	}
}

func TestResourceNegativeDurationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("negative duration accepted")
		}
	}()
	NewResource("x").Acquire(0, -1)
}

func TestExecSchedulesCompletion(t *testing.T) {
	e := NewEngine()
	r := NewResource("link")
	var completions []Time
	Exec(e, r, 0, 5, func(now Time) { completions = append(completions, now) })
	Exec(e, r, 0, 5, func(now Time) { completions = append(completions, now) })
	end := e.Run()
	if end != 10 {
		t.Fatalf("makespan %v, want 10 (serialized)", end)
	}
	if len(completions) != 2 || completions[0] != 5 || completions[1] != 10 {
		t.Fatalf("completions %v, want [5 10]", completions)
	}
}

func TestExecNilDone(t *testing.T) {
	e := NewEngine()
	r := NewResource("x")
	if _, end := Exec(e, r, 1, 2, nil); end != 3 {
		t.Fatalf("Exec end = %v, want 3", end)
	}
	e.Run()
}

func TestTrackerBusyWithin(t *testing.T) {
	var tr Tracker
	tr.Add(0, 10, "a")
	tr.Add(20, 30, "b")
	if got := tr.BusyWithin(5, 25); got != 10 {
		t.Fatalf("BusyWithin(5,25) = %v, want 10 (5 from each span)", got)
	}
	if got := tr.BusyWithin(100, 200); got != 0 {
		t.Fatalf("BusyWithin outside spans = %v", got)
	}
}

// Property: for any set of (request time, duration) pairs issued in
// nondecreasing request order, a resource never overlaps bookings and its
// busy time equals the sum of durations.
func TestQuickResourceNoOverlap(t *testing.T) {
	f := func(reqRaw []uint16) bool {
		r := NewResource("q")
		var prevEnd Time = -1
		var cursor Time
		var total float64
		for _, raw := range reqRaw {
			at := cursor + float64(raw%7)
			dur := float64(raw % 11)
			cursor = at
			s, e := r.Acquire(at, dur)
			if s < at || e != s+dur {
				return false
			}
			if s < prevEnd { // overlap with previous booking
				return false
			}
			prevEnd = e
			total += dur
		}
		return r.BusyTime() == total
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the engine executes exactly the number of events scheduled.
func TestQuickAllEventsExecute(t *testing.T) {
	f := func(times []uint16) bool {
		e := NewEngine()
		count := 0
		for _, tm := range times {
			e.At(Time(tm), func(Time) { count++ })
		}
		e.Run()
		return count == len(times)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
