package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// This file exports a Tracer's spans as Chrome trace-event JSON — the
// {"traceEvents": [...]} format chrome://tracing and Perfetto load. Nodes
// become processes ("node0", "node1", ... plus "cluster" for NodeCluster
// spans), streams become named threads, spans become complete ("X") events,
// instants become "i" events, and flow-linked pairs additionally emit
// "s"/"f" flow events so Perfetto draws send→recv arrows across tracks.
//
// Output is deterministic: events are sorted by (timestamp, pid, tid, name)
// and all JSON maps have sorted keys, so identical runs export identical
// bytes — the property the golden tests pin.

// chromeEvent is one trace event in Chrome's JSON schema.
type chromeEvent struct {
	Name string                 `json:"name"`
	Cat  string                 `json:"cat,omitempty"`
	Ph   string                 `json:"ph"`
	Ts   float64                `json:"ts"` // microseconds
	Dur  *float64               `json:"dur,omitempty"`
	Pid  int                    `json:"pid"`
	Tid  int                    `json:"tid"`
	ID   string                 `json:"id,omitempty"`
	BP   string                 `json:"bp,omitempty"`
	S    string                 `json:"s,omitempty"` // instant scope
	Args map[string]interface{} `json:"args,omitempty"`
}

// streamRank gives well-known streams a stable, readable track order.
func streamRank(stream string) int {
	switch stream {
	case "dnn":
		return 0
	case "comp":
		return 1
	case "net":
		return 2
	case "up":
		return 3
	case "down":
		return 4
	case "round":
		return 5
	default:
		return 6
	}
}

// chromePid maps a span node to a trace pid. Cluster-wide spans get their
// own process at pid 0 and real nodes shift up by one, keeping pids
// non-negative (some trace viewers dislike negative ids).
func chromePid(node int) int {
	if node == NodeCluster {
		return 0
	}
	return node + 1
}

// WriteChromeTrace writes every recorded span as Chrome trace-event JSON.
// A nil tracer writes an empty (but valid) trace.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	spans := t.Spans()

	// Assign tids: one per (node, stream), ordered by rank then name so the
	// UI shows dnn/comp/net tracks consistently on every node.
	type lane struct {
		node   int
		stream string
	}
	laneSet := map[lane]bool{}
	for _, s := range spans {
		laneSet[lane{s.Node, s.Stream}] = true
	}
	lanes := make([]lane, 0, len(laneSet))
	for l := range laneSet {
		lanes = append(lanes, l)
	}
	sort.Slice(lanes, func(i, j int) bool {
		a, b := lanes[i], lanes[j]
		if a.node != b.node {
			return a.node < b.node
		}
		ra, rb := streamRank(a.stream), streamRank(b.stream)
		if ra != rb {
			return ra < rb
		}
		return a.stream < b.stream
	})
	tid := map[lane]int{}
	nextTid := map[int]int{}
	var events []chromeEvent
	seenProc := map[int]bool{}
	for _, l := range lanes {
		id := nextTid[l.node]
		nextTid[l.node]++
		tid[l] = id
		pid := chromePid(l.node)
		if !seenProc[pid] {
			seenProc[pid] = true
			pname := fmt.Sprintf("node%d", l.node)
			if l.node == NodeCluster {
				pname = "cluster"
			}
			events = append(events, chromeEvent{
				Name: "process_name", Ph: "M", Pid: pid, Tid: 0,
				Args: map[string]interface{}{"name": pname},
			})
			events = append(events, chromeEvent{
				Name: "process_sort_index", Ph: "M", Pid: pid, Tid: 0,
				Args: map[string]interface{}{"sort_index": l.node},
			})
		}
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: pid, Tid: id,
			Args: map[string]interface{}{"name": l.stream},
		})
		events = append(events, chromeEvent{
			Name: "thread_sort_index", Ph: "M", Pid: pid, Tid: id,
			Args: map[string]interface{}{"sort_index": streamRank(l.stream)},
		})
	}

	var body []chromeEvent
	for _, s := range spans {
		pid := chromePid(s.Node)
		id := tid[lane{s.Node, s.Stream}]
		ev := chromeEvent{
			Name: s.Name, Cat: s.Cat, Pid: pid, Tid: id,
			Ts: s.Start * 1e6,
		}
		if s.NArgs > 0 {
			ev.Args = map[string]interface{}{}
			for i := 0; i < s.NArgs; i++ {
				a := s.Args[i]
				if a.Str != "" {
					ev.Args[a.Key] = a.Str
				} else {
					ev.Args[a.Key] = a.Val
				}
			}
		}
		if s.Instant {
			ev.Ph = "i"
			ev.S = "t" // thread-scoped instant
		} else {
			ev.Ph = "X"
			d := s.Dur * 1e6
			ev.Dur = &d
		}
		body = append(body, ev)
		if s.Flow != 0 {
			cat := s.Cat
			if cat == "" {
				cat = "flow"
			}
			fl := chromeEvent{
				Name: "xfer", Cat: cat, Pid: pid, Tid: id,
				ID: fmt.Sprintf("%#x", s.Flow),
			}
			if s.FlowStart {
				fl.Ph = "s"
				fl.Ts = (s.Start + s.Dur) * 1e6 // arrow leaves as the send completes
			} else {
				fl.Ph = "f"
				fl.BP = "e"
				fl.Ts = s.Start * 1e6
			}
			body = append(body, fl)
		}
	}
	sort.SliceStable(body, func(i, j int) bool {
		a, b := body[i], body[j]
		if a.Ts != b.Ts {
			return a.Ts < b.Ts
		}
		if a.Pid != b.Pid {
			return a.Pid < b.Pid
		}
		if a.Tid != b.Tid {
			return a.Tid < b.Tid
		}
		if a.Ph != b.Ph {
			return a.Ph < b.Ph
		}
		return a.Name < b.Name
	})
	events = append(events, body...)
	if events == nil {
		events = []chromeEvent{} // "traceEvents": [] — valid even when empty
	}

	doc := map[string]interface{}{
		"traceEvents":     events,
		"displayTimeUnit": "ms",
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}
