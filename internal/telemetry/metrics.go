package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// This file is the metrics half of the observability plane: a registry of
// counters, gauges, and fixed-bucket histograms with Prometheus-compatible
// naming. Instruments are obtained once at setup (Registry lookups take a
// lock) and updated lock-free on the hot path; nil instruments no-op.

// Counter is a monotonically increasing float64 (float so byte counts and
// second sums share one type; integers stay exact to 2^53).
type Counter struct{ bits atomic.Uint64 }

// Add increments the counter. Negative deltas are ignored (counters are
// monotone); nil counters no-op.
func (c *Counter) Add(v float64) {
	if c == nil || v < 0 {
		return
	}
	addFloat(&c.bits, v)
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current total (0 for nil).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Reset zeroes the counter. Test support only — exposition assumes
// monotonicity between scrapes.
func (c *Counter) Reset() {
	if c == nil {
		return
	}
	c.bits.Store(0)
}

// Gauge is a settable float64.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v (nil gauges no-op).
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by v.
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	addFloat(&g.bits, v)
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket cumulative histogram (Prometheus semantics:
// bucket[i] counts observations ≤ UpperBounds[i], plus an implicit +Inf).
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	sum    atomic.Uint64   // float64 bits
	total  atomic.Uint64
}

// Observe records one observation (nil histograms no-op).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v
	h.counts[i].Add(1)
	h.total.Add(1)
	addFloat(&h.sum, v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.total.Load()
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// addFloat atomically adds v to a float64 stored as uint64 bits.
func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// LatencyBuckets covers 10 µs … 30 s, roughly ×3 per step — wide enough for
// both virtual-clock iteration times and wall-clock live rounds.
var LatencyBuckets = []float64{
	1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1, 3, 10, 30,
}

// SizeBuckets covers 256 B … 1 GiB in ×4 steps, for payload and batch sizes.
var SizeBuckets = []float64{
	256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10,
	1 << 20, 4 << 20, 16 << 20, 64 << 20, 256 << 20, 1 << 30,
}

// RatioBuckets covers 0.1 % … 100 % in roughly ×2 steps, for compression
// ratios and other (0, 1] fractions such as the autotuner's calibrated
// wire/raw estimates.
var RatioBuckets = []float64{
	0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1,
}

// series is one labeled instrument inside a family.
type series struct {
	labels string // canonical rendered label set, "" for none
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family is one metric name: a type, help text, and its labeled series.
type family struct {
	name, help, typ string
	series          map[string]*series
}

// Registry holds metric families. Nil registries hand out nil instruments,
// so a disabled metrics plane costs nothing past setup. The zero value is
// not usable — use NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{families: map[string]*family{}} }

// labelString renders "k1,v1,k2,v2,..." pairs canonically (sorted by key,
// values escaped). Panics on an odd pair count — a programming error.
func labelString(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic(fmt.Sprintf("telemetry: odd label list %q", kv))
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		// %q escapes backslash, quote, and newline — a superset of what the
		// Prometheus text format requires.
		fmt.Fprintf(&b, "%s=%q", p.k, p.v)
	}
	return b.String()
}

// lookup finds or creates the series for (name, labels), enforcing type
// consistency within the family.
func (r *Registry) lookup(name, help, typ string, kv []string) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, series: map[string]*series{}}
		r.families[name] = f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("telemetry: metric %q registered as %s, requested as %s", name, f.typ, typ))
	}
	ls := labelString(kv)
	s := f.series[ls]
	if s == nil {
		s = &series{labels: ls}
		f.series[ls] = s
	}
	return s
}

// Counter returns the counter named name with the given "k, v, ..." label
// pairs, creating it on first use. Nil registries return nil (a valid
// no-op counter).
func (r *Registry) Counter(name, help string, kv ...string) *Counter {
	if r == nil {
		return nil
	}
	s := r.lookup(name, help, "counter", kv)
	if s.c == nil {
		s.c = &Counter{}
	}
	return s.c
}

// Gauge returns the gauge named name (nil registry → nil).
func (r *Registry) Gauge(name, help string, kv ...string) *Gauge {
	if r == nil {
		return nil
	}
	s := r.lookup(name, help, "gauge", kv)
	if s.g == nil {
		s.g = &Gauge{}
	}
	return s.g
}

// Histogram returns the histogram named name with the given upper bounds
// (sorted ascending; +Inf implicit). Bounds are fixed at first registration;
// later calls reuse them. Nil registry → nil.
func (r *Registry) Histogram(name, help string, bounds []float64, kv ...string) *Histogram {
	if r == nil {
		return nil
	}
	s := r.lookup(name, help, "histogram", kv)
	if s.h == nil {
		bs := make([]float64, len(bounds))
		copy(bs, bounds)
		sort.Float64s(bs)
		s.h = &Histogram{bounds: bs, counts: make([]atomic.Uint64, len(bs)+1)}
	}
	return s.h
}
