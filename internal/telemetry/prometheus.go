package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file renders a Registry in the Prometheus text exposition format
// (version 0.0.4): "# HELP" / "# TYPE" headers per family, one line per
// labeled series, histograms expanded into cumulative _bucket series plus
// _sum and _count. Families and series are emitted in sorted order so the
// dump is deterministic and diff-able.

// formatValue renders a sample value the way Prometheus expects.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// seriesName renders name{labels} (or bare name).
func seriesName(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

// withLabel appends one more label to an already-rendered label set.
func withLabel(labels, k, v string) string {
	extra := fmt.Sprintf("%s=%q", k, v)
	if labels == "" {
		return extra
	}
	return labels + "," + extra
}

// WritePrometheus writes every registered metric. A nil registry writes
// nothing (and returns nil).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	// Snapshot the family/series structure under the lock; values are read
	// atomically afterwards.
	type snapSeries struct {
		labels string
		c      *Counter
		g      *Gauge
		h      *Histogram
	}
	type snapFamily struct {
		name, help, typ string
		series          []snapSeries
	}
	fams := make([]snapFamily, 0, len(names))
	for _, n := range names {
		f := r.families[n]
		sf := snapFamily{name: f.name, help: f.help, typ: f.typ}
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := f.series[k]
			sf.series = append(sf.series, snapSeries{labels: s.labels, c: s.c, g: s.g, h: s.h})
		}
		fams = append(fams, sf)
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.series {
			switch f.typ {
			case "counter":
				fmt.Fprintf(&b, "%s %s\n", seriesName(f.name, s.labels), formatValue(s.c.Value()))
			case "gauge":
				fmt.Fprintf(&b, "%s %s\n", seriesName(f.name, s.labels), formatValue(s.g.Value()))
			case "histogram":
				h := s.h
				if h == nil {
					continue
				}
				var cum uint64
				for i, bound := range h.bounds {
					cum += h.counts[i].Load()
					fmt.Fprintf(&b, "%s %d\n",
						seriesName(f.name+"_bucket", withLabel(s.labels, "le", formatValue(bound))), cum)
				}
				cum += h.counts[len(h.bounds)].Load()
				fmt.Fprintf(&b, "%s %d\n",
					seriesName(f.name+"_bucket", withLabel(s.labels, "le", "+Inf")), cum)
				fmt.Fprintf(&b, "%s %s\n", seriesName(f.name+"_sum", s.labels), formatValue(h.Sum()))
				fmt.Fprintf(&b, "%s %d\n", seriesName(f.name+"_count", s.labels), h.Count())
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
