package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// TestNilSafety pins the contract every instrumented hot path relies on: a
// nil tracer, registry, or instrument no-ops without panicking.
func TestNilSafety(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	if tr.Now() != 0 || tr.NewFlow() != 0 || tr.Len() != 0 {
		t.Fatal("nil tracer leaks state")
	}
	tr.Record(Span{Name: "x"})
	tr.Event("x", "y", 0, "net", 1)
	tr.Reset()
	if got := tr.Spans(); got != nil {
		t.Fatalf("nil tracer Spans() = %v, want nil", got)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("nil tracer export: %v", err)
	}
	var doc map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("nil tracer export is not JSON: %v", err)
	}
	if _, ok := doc["traceEvents"].([]interface{}); !ok {
		t.Fatalf("empty trace lacks traceEvents array: %s", buf.String())
	}

	var reg *Registry
	reg.Counter("c", "h").Add(1)
	reg.Gauge("g", "h").Set(2)
	reg.Histogram("hst", "h", LatencyBuckets).Observe(3)
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatalf("nil registry export: %v", err)
	}

	var set *Set
	if set.T() != nil || set.M() != nil {
		t.Fatal("nil Set hands out non-nil instruments")
	}
}

// TestTracerBasics covers recording, args, Len/Reset, and flow allocation.
func TestTracerBasics(t *testing.T) {
	tr := NewTracer()
	if !tr.Enabled() {
		t.Fatal("fresh tracer disabled")
	}
	s := Span{Name: "a", Node: 0, Stream: "comp", Start: 1, Dur: 2}
	for i := 0; i < maxArgs+2; i++ { // overflow args must be dropped, not panic
		s = s.With(Num("k", float64(i)))
	}
	if s.NArgs != maxArgs {
		t.Fatalf("NArgs = %d, want %d", s.NArgs, maxArgs)
	}
	tr.Record(s)
	tr.Event("ev", "chaos", 1, "net", 3)
	if tr.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tr.Len())
	}
	spans := tr.Spans()
	if !spans[1].Instant || spans[1].Start != 3 {
		t.Fatalf("event span wrong: %+v", spans[1])
	}
	if f1, f2 := tr.NewFlow(), tr.NewFlow(); f1 == 0 || f2 == 0 || f1 == f2 {
		t.Fatalf("NewFlow ids %d, %d", f1, f2)
	}
	tr.Reset()
	if tr.Len() != 0 {
		t.Fatal("Reset left spans behind")
	}
	if tr.NewFlow() == 0 {
		t.Fatal("flow counter reset — ids could collide across resets")
	}
}

// TestFlowID pins the deterministic cross-goroutine flow-id derivation.
func TestFlowID(t *testing.T) {
	a := FlowID(0, 1, "conv1", 7)
	if a == 0 {
		t.Fatal("FlowID returned 0 (reserved for 'no flow')")
	}
	if b := FlowID(0, 1, "conv1", 7); b != a {
		t.Fatalf("FlowID not deterministic: %d vs %d", a, b)
	}
	distinct := map[uint64]string{a: "0-1-conv1-7"}
	for key, id := range map[string]uint64{
		"1-0-conv1-7": FlowID(1, 0, "conv1", 7),
		"0-1-conv2-7": FlowID(0, 1, "conv2", 7),
		"0-1-conv1-8": FlowID(0, 1, "conv1", 8),
	} {
		if prev, dup := distinct[id]; dup {
			t.Fatalf("FlowID collision: %s and %s both map to %d", prev, key, id)
		}
		distinct[id] = key
	}
}

// TestCounterGaugeHistogram covers instrument semantics.
func TestCounterGaugeHistogram(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("hipress_test_total", "help", "k", "v")
	c.Inc()
	c.Add(2.5)
	c.Add(-10) // counters are monotone: negative deltas ignored
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %v, want 3.5", got)
	}
	if again := reg.Counter("hipress_test_total", "help", "k", "v"); again != c {
		t.Fatal("same (name, labels) returned a different counter")
	}

	g := reg.Gauge("hipress_test_gauge", "help")
	g.Set(4)
	g.Add(-1.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", got)
	}

	h := reg.Histogram("hipress_test_seconds", "help", []float64{1, 10})
	for _, v := range []float64{0.5, 1.0, 5, 100} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	if math.Abs(h.Sum()-106.5) > 1e-9 {
		t.Fatalf("sum = %v, want 106.5", h.Sum())
	}
}

// TestRegistryTypeMismatchPanics: one name, one type.
func TestRegistryTypeMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("hipress_x_total", "h")
	defer func() {
		if recover() == nil {
			t.Fatal("registering a gauge under a counter name did not panic")
		}
	}()
	reg.Gauge("hipress_x_total", "h")
}

// chromeDoc mirrors the Chrome trace-event JSON schema for validation.
type chromeDoc struct {
	TraceEvents []struct {
		Name string                 `json:"name"`
		Cat  string                 `json:"cat"`
		Ph   string                 `json:"ph"`
		Ts   *float64               `json:"ts"`
		Dur  *float64               `json:"dur"`
		Pid  *int                   `json:"pid"`
		Tid  *int                   `json:"tid"`
		ID   string                 `json:"id"`
		BP   string                 `json:"bp"`
		S    string                 `json:"s"`
		Args map[string]interface{} `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

// validateChromeTrace checks structural invariants of an exported trace and
// returns the parsed document. Shared with the plane-level tests.
func validateChromeTrace(t *testing.T, raw []byte) chromeDoc {
	t.Helper()
	var doc chromeDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	flowStarts := map[string]bool{}
	flowEnds := map[string]bool{}
	for i, ev := range doc.TraceEvents {
		if ev.Name == "" || ev.Ph == "" || ev.Pid == nil || ev.Tid == nil || ev.Ts == nil {
			t.Fatalf("event %d missing required fields: %+v", i, ev)
		}
		switch ev.Ph {
		case "X":
			if ev.Dur == nil || *ev.Dur < 0 {
				t.Fatalf("complete event %d lacks non-negative dur: %+v", i, ev)
			}
		case "i":
			if ev.S == "" {
				t.Fatalf("instant event %d lacks scope: %+v", i, ev)
			}
		case "s":
			if ev.ID == "" {
				t.Fatalf("flow start %d lacks id", i)
			}
			flowStarts[ev.ID] = true
		case "f":
			if ev.ID == "" || ev.BP != "e" {
				t.Fatalf("flow end %d malformed: %+v", i, ev)
			}
			flowEnds[ev.ID] = true
		case "M":
			// metadata
		default:
			t.Fatalf("event %d has unknown phase %q", i, ev.Ph)
		}
	}
	for id := range flowEnds {
		if !flowStarts[id] {
			t.Fatalf("flow %s terminates without a start", id)
		}
	}
	return doc
}

// TestChromeTraceSchema exports a representative mix of spans (multi-node,
// cluster-wide, instant, flow-linked) and validates the schema plus the
// process/thread metadata and flow pairing Perfetto depends on.
func TestChromeTraceSchema(t *testing.T) {
	tr := NewTracer()
	flow := tr.NewFlow()
	tr.Record(Span{Name: "compute fwd", Cat: "compute", Node: 0, Stream: "dnn", Start: 0, Dur: 1})
	tr.Record(Span{Name: "send w/p0", Cat: "send", Node: 0, Stream: "up", Start: 1, Dur: 0.5,
		Flow: flow, FlowStart: true}.With(Num("bytes", 128)))
	tr.Record(Span{Name: "recv w/p0", Cat: "recv", Node: 1, Stream: "down", Start: 1.2, Dur: 0.3,
		Flow: flow}.With(Str("peer", "node0")))
	tr.Record(Span{Name: "round ps [ok]", Cat: "round", Node: NodeCluster, Stream: "round", Start: 0, Dur: 2})
	tr.Event("retry w→1 #1", "retry", 0, "net", 1.4)

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	doc := validateChromeTrace(t, buf.Bytes())

	procs := map[int]string{}
	var sawFlowStart, sawFlowEnd, sawInstant bool
	for _, ev := range doc.TraceEvents {
		switch {
		case ev.Ph == "M" && ev.Name == "process_name":
			procs[*ev.Pid] = ev.Args["name"].(string)
		case ev.Ph == "s":
			sawFlowStart = true
		case ev.Ph == "f":
			sawFlowEnd = true
		case ev.Ph == "i":
			sawInstant = true
		}
	}
	// Cluster process at pid 0, nodes shifted up by one.
	if procs[0] != "cluster" || procs[1] != "node0" || procs[2] != "node1" {
		t.Fatalf("process naming wrong: %v", procs)
	}
	if !sawFlowStart || !sawFlowEnd || !sawInstant {
		t.Fatalf("missing event phases: s=%v f=%v i=%v", sawFlowStart, sawFlowEnd, sawInstant)
	}

	// Determinism: a second export of the same tracer is byte-identical.
	var buf2 bytes.Buffer
	if err := tr.WriteChromeTrace(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("re-export of identical spans differs")
	}
}

// TestPrometheusFormat validates the text exposition: headers, sorted
// deterministic series, label canonicalization and escaping, and cumulative
// histogram buckets.
func TestPrometheusFormat(t *testing.T) {
	reg := NewRegistry()
	// Label order must not matter: both resolve to the same series.
	reg.Counter("hipress_bytes_total", "bytes", "algo", "onebit", "node", "0").Add(10)
	reg.Counter("hipress_bytes_total", "bytes", "node", "0", "algo", "onebit").Add(5)
	reg.Counter("hipress_bytes_total", "bytes", "algo", "dgc", "node", "1").Add(1)
	reg.Gauge("hipress_occupancy", "link occupancy", "weird", `va"l\ue`).Set(0.5)
	h := reg.Histogram("hipress_lat_seconds", "latency", []float64{0.1, 1})
	h.Observe(0.0625) // exact binary fractions keep the _sum line stable
	h.Observe(0.5)
	h.Observe(10)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	for _, want := range []string{
		"# HELP hipress_bytes_total bytes\n# TYPE hipress_bytes_total counter\n",
		`hipress_bytes_total{algo="dgc",node="1"} 1`,
		`hipress_bytes_total{algo="onebit",node="0"} 15`, // merged across label orders
		"# TYPE hipress_lat_seconds histogram",
		`hipress_lat_seconds_bucket{le="0.1"} 1`,
		`hipress_lat_seconds_bucket{le="1"} 2`,
		`hipress_lat_seconds_bucket{le="+Inf"} 3`,
		"hipress_lat_seconds_sum 10.5625",
		"hipress_lat_seconds_count 3",
		`hipress_occupancy{weird="va\"l\\ue"} 0.5`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Determinism.
	var buf2 bytes.Buffer
	if err := reg.WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	if out != buf2.String() {
		t.Fatal("re-export differs")
	}
}

// TestDisabledTelemetryZeroAllocs is the hard guarantee behind "free when
// off": every hot-path entry point, called through nil receivers, performs
// zero heap allocations.
func TestDisabledTelemetryZeroAllocs(t *testing.T) {
	var tr *Tracer
	var c *Counter
	var g *Gauge
	var h *Histogram
	var set *Set
	allocs := testing.AllocsPerRun(1000, func() {
		if tr.Enabled() {
			t.Error("nil enabled")
		}
		tr.Record(Span{Name: "send w/p0", Cat: "send", Node: 0, Stream: "up", Start: 1, Dur: 2}.
			With(Num("bytes", 128)))
		tr.Event("ev", "chaos", 0, "net", tr.Now())
		_ = tr.NewFlow()
		c.Add(42)
		c.Inc()
		g.Set(1)
		h.Observe(0.5)
		set.T().Record(Span{})
		set.M().Counter("x", "y").Inc()
	})
	if allocs != 0 {
		t.Fatalf("disabled telemetry allocates %.1f allocs/op, want 0", allocs)
	}
}

// BenchmarkTelemetryDisabled measures the disabled-path cost (expect ~ns and
// 0 allocs/op — run with -benchmem).
func BenchmarkTelemetryDisabled(b *testing.B) {
	var tr *Tracer
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Record(Span{Name: "send", Node: 0, Stream: "up", Start: 1, Dur: 2}.With(Num("bytes", 128)))
		c.Add(1)
	}
}

// BenchmarkTelemetryEnabled is the enabled-path counterpart, for comparing
// the overhead tracing adds when actually on.
func BenchmarkTelemetryEnabled(b *testing.B) {
	tr := NewTracer()
	reg := NewRegistry()
	c := reg.Counter("hipress_bench_total", "bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Record(Span{Name: "send", Node: 0, Stream: "up", Start: 1, Dur: 2}.With(Num("bytes", 128)))
		c.Add(1)
		if i%1024 == 0 {
			tr.Reset() // keep memory bounded
		}
	}
}
