// Package telemetry is the repository's unified observability plane: a
// zero-dependency span tracer and a metrics registry shared by both
// execution planes. The timing plane records virtual-clock spans (seconds of
// simulated time), the live plane records wall-clock spans (seconds since
// the tracer's birth), and the exporters render either into standard
// formats: Chrome trace-event JSON (chrometrace.go, loadable in Perfetto)
// and Prometheus text exposition (prometheus.go).
//
// Every entry point is nil-safe: a nil *Tracer, *Registry, *Counter,
// *Gauge, or *Histogram no-ops without locking or allocating, so
// instrumented hot paths cost two predictable branches when telemetry is
// disabled. Call sites that must build a span name (fmt.Sprintf allocates)
// gate on Tracer.Enabled() first.
package telemetry

import (
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"
)

// Arg is one key/value span attribute. Val carries numeric attributes; a
// non-empty Str takes precedence and carries string attributes. The fixed
// shape (rather than map[string]any) keeps span construction heap-free.
type Arg struct {
	Key string
	Val float64
	Str string
}

// Num returns a numeric Arg.
func Num(key string, v float64) Arg { return Arg{Key: key, Val: v} }

// Str returns a string Arg.
func Str(key, v string) Arg { return Arg{Key: key, Str: v} }

// maxArgs is the inline attribute capacity of one span.
const maxArgs = 4

// Span is one timed (or instant) interval on a node's stream.
//
// Node maps to a Chrome trace process; Stream to a thread within it. Times
// are seconds on whichever clock the recording plane uses — virtual seconds
// from the simulator, seconds since Tracer birth from the live plane.
type Span struct {
	// Name is the display name ("encode conv1/p0"); Cat the category used
	// for filtering ("encode", "send", "retry", ...).
	Name string
	Cat  string
	// Node identifies the cluster node (trace process). NodeCluster marks
	// cluster-wide spans (whole rounds) that belong to no single node.
	Node int
	// Stream is the per-node lane: "dnn", "comp", "net", "up", "down", ...
	Stream string
	// Start and Dur are seconds. Dur 0 with Instant set renders as an
	// instant event.
	Start, Dur float64
	// Instant marks a zero-duration event (retry, conviction, outage).
	Instant bool
	// Flow, when nonzero, links this span to its counterpart across nodes
	// (send → recv). FlowStart marks the producing side.
	Flow      uint64
	FlowStart bool
	// Args holds up to maxArgs inline attributes; NArgs is the live count.
	Args  [maxArgs]Arg
	NArgs int
}

// NodeCluster is the Span.Node value for cluster-wide spans.
const NodeCluster = -1

// With appends an attribute in place (dropping it when full) and returns
// the span for chaining in literals.
func (s Span) With(a Arg) Span {
	if s.NArgs < maxArgs {
		s.Args[s.NArgs] = a
		s.NArgs++
	}
	return s
}

// Tracer collects spans from one run. The zero value is ready to use; nil
// is a valid "disabled" tracer. Recording is mutex-serialized (spans arrive
// from many goroutines on the live plane); the disabled path takes no lock.
type Tracer struct {
	mu    sync.Mutex
	spans []Span

	flowSeq atomic.Uint64
	base    time.Time
}

// NewTracer returns an enabled tracer. Its wall clock (Now) starts at zero
// at creation; virtual-clock users ignore Now and stamp spans themselves.
func NewTracer() *Tracer { return &Tracer{base: time.Now()} }

// Enabled reports whether spans are being recorded. Call sites use it to
// skip span-name construction entirely when tracing is off.
func (t *Tracer) Enabled() bool { return t != nil }

// Now returns wall-clock seconds since the tracer was created (0 for nil).
// The live plane stamps its spans with it so one tracer accumulates a
// consistent timeline across many rounds.
func (t *Tracer) Now() float64 {
	if t == nil || t.base.IsZero() {
		return 0
	}
	return time.Since(t.base).Seconds()
}

// NewFlow allocates a fresh flow id (0 for nil). Used when both ends of the
// link are recorded by the same call chain; cross-goroutine pairs use
// FlowID instead.
func (t *Tracer) NewFlow() uint64 {
	if t == nil {
		return 0
	}
	return t.flowSeq.Add(1)
}

// Record appends one span. Nil tracers discard it without locking; the span
// value never escapes in that case, so the call is allocation-free.
func (t *Tracer) Record(s Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
}

// Event records an instant event at time `at`.
func (t *Tracer) Event(name, cat string, node int, stream string, at float64) {
	if t == nil {
		return
	}
	t.Record(Span{Name: name, Cat: cat, Node: node, Stream: stream, Start: at, Instant: true})
}

// Spans returns a copy of everything recorded so far.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// Len returns the number of recorded spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Reset discards all recorded spans (the flow counter keeps advancing, so
// ids never collide across resets).
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = nil
	t.mu.Unlock()
}

// FlowID derives a deterministic flow id for one logical transfer, so the
// sending and receiving goroutines can tag their spans with the same id
// without coordinating. Distinct (src, dst, name, seq) tuples map to
// distinct-with-overwhelming-probability nonzero ids.
func FlowID(src, dst int, name string, seq int) uint64 {
	h := fnv.New64a()
	var buf [24]byte
	putU64 := func(off int, v uint64) {
		for i := 0; i < 8; i++ {
			buf[off+i] = byte(v >> (8 * i))
		}
	}
	putU64(0, uint64(int64(src)))
	putU64(8, uint64(int64(dst)))
	putU64(16, uint64(int64(seq)))
	h.Write(buf[:])
	h.Write([]byte(name))
	id := h.Sum64()
	if id == 0 {
		id = 1
	}
	return id
}

// Set bundles the tracer and metrics registry one run shares; either field
// may be nil (that signal disabled). A nil *Set disables both.
type Set struct {
	Tracer  *Tracer
	Metrics *Registry
}

// New returns a Set with both signals enabled.
func New() *Set { return &Set{Tracer: NewTracer(), Metrics: NewRegistry()} }

// T returns the tracer (nil-safe).
func (s *Set) T() *Tracer {
	if s == nil {
		return nil
	}
	return s.Tracer
}

// M returns the metrics registry (nil-safe).
func (s *Set) M() *Registry {
	if s == nil {
		return nil
	}
	return s.Metrics
}
