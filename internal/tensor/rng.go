package tensor

import "math"

// RNG is a small, deterministic pseudo-random generator (splitmix64 core)
// used wherever the paper's algorithms need randomness: TernGrad's stochastic
// rounding, DGC's sampling, and synthetic gradient/dataset generation. A
// hand-rolled generator keeps experiment output byte-identical across Go
// releases, which math/rand does not guarantee.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Two generators with the same
// seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed + 0x9e3779b97f4a7c15}
}

// RNGState is the full serializable state of an RNG. The splitmix64 core
// keeps its entire state in one 64-bit word, so a state capture is exact:
// restoring it resumes the stream at precisely the next draw. Checkpoint
// files persist these (see internal/ckpt) to make kill/resume training
// bit-identical to the uninterrupted run.
type RNGState uint64

// Save captures the generator's current state. The returned value is
// self-contained: it can be persisted and fed to Restore (on this or any
// other RNG) to continue the identical stream.
func (r *RNG) Save() RNGState { return RNGState(r.state) }

// Restore rewinds (or fast-forwards) the generator to a previously saved
// state. After Restore, the draw sequence is bit-identical to what the
// saving generator would have produced next.
func (r *RNG) Restore(s RNGState) { r.state = uint64(s) }

// rngGamma is the splitmix64 Weyl increment: the state advances by exactly
// this constant per draw, which is what makes the stream randomly
// addressable (see Uint64At).
const rngGamma = 0x9e3779b97f4a7c15

// rngFinalize is the splitmix64 output mix applied to a state word.
func rngFinalize(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += rngGamma
	return rngFinalize(r.state)
}

// Uint64At returns draw i (0-indexed) of the stream continuing from saved
// state s, without touching any generator. Because splitmix64's state is a
// Weyl sequence (state += gamma per draw), draw i is a pure function of
// (s, i): this is what lets the parallel TernGrad kernel give every chunk
// O(1) random access to its slice of the stream while staying bit-identical
// to the sequential generator.
func Uint64At(s RNGState, i uint64) uint64 {
	return rngFinalize(uint64(s) + (i+1)*rngGamma)
}

// Float64At returns Float64 draw i of the stream continuing from state s.
// Float64At(r.Save(), i) == the (i+1)-th r.Float64() call, bit for bit.
func Float64At(s RNGState, i uint64) float64 {
	return float64(Uint64At(s, i)>>11) / (1 << 53)
}

// Skip advances the generator past n draws in O(1), as if Uint64 had been
// called n times. Used by parallel kernels that consumed n draws through
// Uint64At to leave the generator in the exact state a sequential
// implementation would.
func (r *RNG) Skip(n uint64) { r.state += n * rngGamma }

// Uint64n returns a uniform value in [0, n). n must be > 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("tensor: Uint64n(0)")
	}
	// Rejection sampling to avoid modulo bias.
	limit := ^uint64(0) - ^uint64(0)%n
	for {
		v := r.Uint64()
		if v < limit {
			return v % n
		}
	}
}

// Intn returns a uniform int in [0, n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float32 returns a uniform float32 in [0, 1).
func (r *RNG) Float32() float32 {
	return float32(r.Uint64()>>40) / (1 << 24)
}

// NormFloat64 returns a standard normal variate (Box–Muller).
func (r *RNG) NormFloat64() float64 {
	// Draw u1 in (0,1] to keep the log finite.
	u1 := 1 - r.Float64()
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// FillNormal fills v with N(0, sigma^2) samples.
func (r *RNG) FillNormal(v []float32, sigma float64) {
	for i := range v {
		v[i] = float32(r.NormFloat64() * sigma)
	}
}

// FillUniform fills v with uniform samples in [lo, hi).
func (r *RNG) FillUniform(v []float32, lo, hi float64) {
	for i := range v {
		v[i] = float32(lo + (hi-lo)*r.Float64())
	}
}

// Perm returns a random permutation of [0, n) (Fisher–Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
