package tensor

import "testing"

// TestRandomAccessMatchesSequential pins the property the parallel TernGrad
// kernel depends on: Uint64At/Float64At over a saved state reproduce the
// sequential stream bit for bit, and Skip leaves the generator exactly where
// n sequential draws would.
func TestRandomAccessMatchesSequential(t *testing.T) {
	for _, seed := range []uint64{0, 1, 42, 0xdeadbeef} {
		r := NewRNG(seed)
		r.Uint64() // desync from the seed so Save captures a mid-stream state
		s := r.Save()

		seq := NewRNG(seed)
		seq.Restore(s)
		for i := uint64(0); i < 1000; i++ {
			wantU := seq.Uint64()
			if got := Uint64At(s, i); got != wantU {
				t.Fatalf("seed %d: Uint64At(s, %d) = %#x, want %#x", seed, i, got, wantU)
			}
		}

		seqF := NewRNG(seed)
		seqF.Restore(s)
		for i := uint64(0); i < 1000; i++ {
			wantF := seqF.Float64()
			if got := Float64At(s, i); got != wantF {
				t.Fatalf("seed %d: Float64At(s, %d) = %v, want %v", seed, i, got, wantF)
			}
		}

		skipped := NewRNG(seed)
		skipped.Restore(s)
		skipped.Skip(1000)
		if skipped.Save() != seq.Save() {
			t.Fatalf("seed %d: Skip(1000) state %#x != 1000 sequential draws %#x",
				seed, skipped.Save(), seq.Save())
		}
	}
}

func TestSkipZeroIsNoop(t *testing.T) {
	r := NewRNG(7)
	s := r.Save()
	r.Skip(0)
	if r.Save() != s {
		t.Fatal("Skip(0) changed state")
	}
}
