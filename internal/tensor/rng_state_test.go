package tensor

import (
	"math"
	"testing"
)

// TestRNGSaveRestoreRoundTrip is the determinism contract the recovery plane
// relies on: capture the state mid-stream, keep drawing, restore, and the
// continuation is bit-identical — across every draw kind the training loop
// uses (uniform, normal, bounded ints, permutations).
func TestRNGSaveRestoreRoundTrip(t *testing.T) {
	r := NewRNG(99)
	// Advance through a mixed workload so the state is mid-stream.
	for i := 0; i < 57; i++ {
		r.Float64()
		r.NormFloat64()
		r.Intn(17)
	}
	st := r.Save()

	// Reference continuation.
	wantU := make([]uint64, 32)
	for i := range wantU {
		wantU[i] = r.Uint64()
	}
	wantN := make([]float64, 16)
	for i := range wantN {
		wantN[i] = r.NormFloat64()
	}
	wantPerm := r.Perm(25)

	// Restore on the SAME generator: stream rewinds exactly.
	r.Restore(st)
	for i, want := range wantU {
		if got := r.Uint64(); got != want {
			t.Fatalf("same-RNG Uint64[%d] = %x, want %x", i, got, want)
		}
	}
	for i, want := range wantN {
		if got := r.NormFloat64(); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("same-RNG NormFloat64[%d] = %x, want %x",
				i, math.Float64bits(got), math.Float64bits(want))
		}
	}
	gotPerm := r.Perm(25)
	for i := range wantPerm {
		if gotPerm[i] != wantPerm[i] {
			t.Fatalf("same-RNG Perm[%d] = %d, want %d", i, gotPerm[i], wantPerm[i])
		}
	}

	// Restore on a FRESH generator (the checkpoint-resume path: the process
	// died, a new RNG object is built, the persisted state is loaded).
	fresh := NewRNG(0)
	fresh.Restore(st)
	for i, want := range wantU {
		if got := fresh.Uint64(); got != want {
			t.Fatalf("fresh-RNG Uint64[%d] = %x, want %x", i, got, want)
		}
	}
}

// TestRNGSaveIsSnapshot: Save returns a value, not an alias — further draws
// on the generator must not mutate an already-captured state.
func TestRNGSaveIsSnapshot(t *testing.T) {
	r := NewRNG(5)
	r.Float64()
	st := r.Save()
	first := r.Uint64() // advances r; st must be unaffected
	for i := 0; i < 10; i++ {
		r.Uint64()
	}
	r.Restore(st)
	if got := r.Uint64(); got != first {
		t.Fatalf("restored draw %x, want %x — Save aliased live state", got, first)
	}
}
