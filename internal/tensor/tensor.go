// Package tensor provides the small dense-vector math kernel used by the
// gradient compression algorithms and the training plane.
//
// Gradients in this codebase are flat []float32 slices ("tensors" of rank 1);
// layer shape information lives with the model descriptions, not here. All
// functions are allocation-conscious: operations that can work in place do,
// and the handful that must allocate say so in their doc comments.
package tensor

import "math"

// Clone returns a copy of v in freshly allocated storage.
func Clone(v []float32) []float32 {
	out := make([]float32, len(v))
	copy(out, v)
	return out
}

// Zero sets every element of v to 0 in place.
func Zero(v []float32) {
	for i := range v {
		v[i] = 0
	}
}

// Fill sets every element of v to x in place.
func Fill(v []float32, x float32) {
	for i := range v {
		v[i] = x
	}
}

// Add accumulates src into dst element-wise. dst and src must be the same
// length; Add panics otherwise because a silent size mismatch during gradient
// aggregation corrupts training.
func Add(dst, src []float32) {
	if len(dst) != len(src) {
		panic("tensor: Add length mismatch")
	}
	for i, s := range src {
		dst[i] += s
	}
}

// Sub subtracts src from dst element-wise.
func Sub(dst, src []float32) {
	if len(dst) != len(src) {
		panic("tensor: Sub length mismatch")
	}
	for i, s := range src {
		dst[i] -= s
	}
}

// Scale multiplies every element of v by a in place.
func Scale(v []float32, a float32) {
	for i := range v {
		v[i] *= a
	}
}

// AXPY computes dst += a*src element-wise.
func AXPY(dst []float32, a float32, src []float32) {
	if len(dst) != len(src) {
		panic("tensor: AXPY length mismatch")
	}
	for i, s := range src {
		dst[i] += a * s
	}
}

// Dot returns the inner product of a and b, accumulated in float64 for
// stability.
func Dot(a, b []float32) float64 {
	if len(a) != len(b) {
		panic("tensor: Dot length mismatch")
	}
	var acc float64
	for i := range a {
		acc += float64(a[i]) * float64(b[i])
	}
	return acc
}

// Sum returns the sum of v accumulated in float64.
func Sum(v []float32) float64 {
	var acc float64
	for _, x := range v {
		acc += float64(x)
	}
	return acc
}

// Mean returns the arithmetic mean of v, or 0 for an empty slice.
func Mean(v []float32) float64 {
	if len(v) == 0 {
		return 0
	}
	return Sum(v) / float64(len(v))
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float32) float64 {
	var acc float64
	for _, x := range v {
		acc += float64(x) * float64(x)
	}
	return math.Sqrt(acc)
}

// Min returns the minimum element of v. It panics on an empty slice.
func Min(v []float32) float32 {
	if len(v) == 0 {
		panic("tensor: Min of empty slice")
	}
	m := v[0]
	for _, x := range v[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum element of v. It panics on an empty slice.
func Max(v []float32) float32 {
	if len(v) == 0 {
		panic("tensor: Max of empty slice")
	}
	m := v[0]
	for _, x := range v[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// MaxAbs returns the maximum absolute value in v, or 0 for an empty slice.
func MaxAbs(v []float32) float32 {
	var m float32
	for _, x := range v {
		a := x
		if a < 0 {
			a = -a
		}
		if a > m {
			m = a
		}
	}
	return m
}

// MeanAbs returns the mean absolute value of v, or 0 for an empty slice.
func MeanAbs(v []float32) float64 {
	if len(v) == 0 {
		return 0
	}
	var acc float64
	for _, x := range v {
		acc += math.Abs(float64(x))
	}
	return acc / float64(len(v))
}

// L1Diff returns the mean absolute difference between a and b.
func L1Diff(a, b []float32) float64 {
	if len(a) != len(b) {
		panic("tensor: L1Diff length mismatch")
	}
	if len(a) == 0 {
		return 0
	}
	var acc float64
	for i := range a {
		acc += math.Abs(float64(a[i]) - float64(b[i]))
	}
	return acc / float64(len(a))
}

// KthLargestAbs returns the k-th largest absolute value in v (k is
// 1-indexed: k=1 is the max). It is used by top-k sparsifiers to derive a
// selection threshold. The input is not modified; the function allocates a
// scratch copy. It panics if k is out of [1, len(v)].
func KthLargestAbs(v []float32, k int) float32 {
	if k < 1 || k > len(v) {
		panic("tensor: KthLargestAbs k out of range")
	}
	scratch := make([]float32, len(v))
	for i, x := range v {
		if x < 0 {
			scratch[i] = -x
		} else {
			scratch[i] = x
		}
	}
	// Iterative quickselect for the (len-k)-th smallest == k-th largest.
	target := len(scratch) - k
	lo, hi := 0, len(scratch)-1
	rng := NewRNG(uint64(len(v))*2654435761 + uint64(k))
	for lo < hi {
		p := partitionAbs(scratch, lo, hi, lo+int(rng.Uint64n(uint64(hi-lo+1))))
		switch {
		case p == target:
			return scratch[p]
		case p < target:
			lo = p + 1
		default:
			hi = p - 1
		}
	}
	return scratch[target]
}

// partitionAbs partitions scratch[lo:hi+1] around the pivot value at index
// pivot, returning the pivot's final index.
func partitionAbs(s []float32, lo, hi, pivot int) int {
	pv := s[pivot]
	s[pivot], s[hi] = s[hi], s[pivot]
	store := lo
	for i := lo; i < hi; i++ {
		if s[i] < pv {
			s[i], s[store] = s[store], s[i]
			store++
		}
	}
	s[store], s[hi] = s[hi], s[store]
	return store
}

// CountAbsAtLeast reports how many elements of v have |x| >= thr.
func CountAbsAtLeast(v []float32, thr float32) int {
	n := 0
	for _, x := range v {
		a := x
		if a < 0 {
			a = -a
		}
		if a >= thr {
			n++
		}
	}
	return n
}
