package tensor

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestCloneIndependence(t *testing.T) {
	v := []float32{1, 2, 3}
	c := Clone(v)
	c[0] = 99
	if v[0] != 1 {
		t.Fatalf("Clone shares storage with source")
	}
}

func TestZeroFill(t *testing.T) {
	v := []float32{1, 2, 3}
	Fill(v, 7)
	for i, x := range v {
		if x != 7 {
			t.Fatalf("Fill: v[%d] = %v, want 7", i, x)
		}
	}
	Zero(v)
	for i, x := range v {
		if x != 0 {
			t.Fatalf("Zero: v[%d] = %v, want 0", i, x)
		}
	}
}

func TestAddSubScaleAXPY(t *testing.T) {
	a := []float32{1, 2, 3}
	b := []float32{10, 20, 30}
	Add(a, b)
	want := []float32{11, 22, 33}
	for i := range a {
		if a[i] != want[i] {
			t.Fatalf("Add: got %v want %v", a, want)
		}
	}
	Sub(a, b)
	want = []float32{1, 2, 3}
	for i := range a {
		if a[i] != want[i] {
			t.Fatalf("Sub: got %v want %v", a, want)
		}
	}
	Scale(a, 2)
	want = []float32{2, 4, 6}
	for i := range a {
		if a[i] != want[i] {
			t.Fatalf("Scale: got %v want %v", a, want)
		}
	}
	AXPY(a, 0.5, b)
	want = []float32{7, 14, 21}
	for i := range a {
		if a[i] != want[i] {
			t.Fatalf("AXPY: got %v want %v", a, want)
		}
	}
}

func TestAddPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("Add did not panic on length mismatch")
		}
	}()
	Add([]float32{1}, []float32{1, 2})
}

func TestDotSumMean(t *testing.T) {
	a := []float32{1, 2, 3}
	b := []float32{4, 5, 6}
	if got := Dot(a, b); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
	if got := Sum(a); got != 6 {
		t.Fatalf("Sum = %v, want 6", got)
	}
	if got := Mean(a); got != 2 {
		t.Fatalf("Mean = %v, want 2", got)
	}
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v, want 0", got)
	}
}

func TestNorm2(t *testing.T) {
	if got := Norm2([]float32{3, 4}); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Norm2 = %v, want 5", got)
	}
}

func TestMinMaxAbs(t *testing.T) {
	v := []float32{-7, 2, 5, -1}
	if got := Min(v); got != -7 {
		t.Fatalf("Min = %v, want -7", got)
	}
	if got := Max(v); got != 5 {
		t.Fatalf("Max = %v, want 5", got)
	}
	if got := MaxAbs(v); got != 7 {
		t.Fatalf("MaxAbs = %v, want 7", got)
	}
	if got := MaxAbs(nil); got != 0 {
		t.Fatalf("MaxAbs(nil) = %v, want 0", got)
	}
}

func TestMeanAbsAndL1Diff(t *testing.T) {
	if got := MeanAbs([]float32{-2, 2}); got != 2 {
		t.Fatalf("MeanAbs = %v, want 2", got)
	}
	if got := L1Diff([]float32{1, 2}, []float32{2, 4}); got != 1.5 {
		t.Fatalf("L1Diff = %v, want 1.5", got)
	}
}

func TestKthLargestAbsAgainstSort(t *testing.T) {
	rng := NewRNG(42)
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		v := make([]float32, n)
		rng.FillNormal(v, 3)
		abs := make([]float64, n)
		for i, x := range v {
			abs[i] = math.Abs(float64(x))
		}
		sort.Float64s(abs)
		k := 1 + rng.Intn(n)
		want := float32(abs[n-k])
		if got := KthLargestAbs(v, k); got != want {
			t.Fatalf("trial %d: KthLargestAbs(n=%d,k=%d) = %v, want %v", trial, n, k, got, want)
		}
	}
}

func TestKthLargestAbsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("no panic for k out of range")
		}
	}()
	KthLargestAbs([]float32{1}, 2)
}

func TestCountAbsAtLeast(t *testing.T) {
	v := []float32{-3, 1, 2, -0.5}
	if got := CountAbsAtLeast(v, 2); got != 2 {
		t.Fatalf("CountAbsAtLeast = %d, want 2", got)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed RNGs diverged at draw %d", i)
		}
	}
	c := NewRNG(8)
	if NewRNG(7).Uint64() == c.Uint64() {
		t.Fatalf("different seeds produced identical first draw")
	}
}

func TestRNGFloatRanges(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 1000; i++ {
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		if f := r.Float32(); f < 0 || f >= 1 {
			t.Fatalf("Float32 out of range: %v", f)
		}
	}
}

func TestRNGUniformity(t *testing.T) {
	r := NewRNG(99)
	const n = 10000
	buckets := make([]int, 10)
	for i := 0; i < n; i++ {
		buckets[r.Intn(10)]++
	}
	for i, c := range buckets {
		if c < n/10-400 || c > n/10+400 {
			t.Fatalf("bucket %d count %d deviates from uniform", i, c)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(3)
	const n = 50000
	var sum, sq float64
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sq += x * x
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(5)
	p := r.Perm(64)
	seen := make([]bool, 64)
	for _, i := range p {
		if i < 0 || i >= 64 || seen[i] {
			t.Fatalf("Perm produced invalid permutation: %v", p)
		}
		seen[i] = true
	}
}

// Property: KthLargestAbs(v, 1) == MaxAbs(v) for all non-empty v.
func TestQuickKthLargestMatchesMaxAbs(t *testing.T) {
	f := func(raw []float32) bool {
		v := make([]float32, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(float64(x)) && !math.IsInf(float64(x), 0) {
				v = append(v, x)
			}
		}
		if len(v) == 0 {
			return true
		}
		return KthLargestAbs(v, 1) == MaxAbs(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Dot(v, v) == Norm2(v)^2 within floating-point tolerance.
func TestQuickDotNormConsistency(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%256) + 1
		v := make([]float32, n)
		NewRNG(seed).FillNormal(v, 1)
		d := Dot(v, v)
		nn := Norm2(v)
		return math.Abs(d-nn*nn) <= 1e-6*(1+math.Abs(d))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUint64nRejectsBias(t *testing.T) {
	r := NewRNG(11)
	for i := 0; i < 1000; i++ {
		if v := r.Uint64n(3); v > 2 {
			t.Fatalf("Uint64n(3) returned %d", v)
		}
	}
}
