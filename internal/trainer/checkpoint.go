package trainer

import (
	"encoding/hex"
	"errors"
	"fmt"
	"strconv"

	"hipress/internal/ckpt"
	"hipress/internal/core"
	"hipress/internal/telemetry"
	"hipress/internal/tensor"
)

// CheckpointConfig wires the recovery plane into a training run: periodic
// crash-consistent snapshots (internal/ckpt) and resume-from-latest. The
// headline guarantee — enforced by TestKillResumeBitIdentical — is that
// kill-at-iteration-k + resume reproduces the uninterrupted run's loss
// curve bit-for-bit: snapshots capture model parameters, momentum
// velocities, per-worker data RNG positions, error-feedback residuals at
// every node, and stateful-compressor RNG streams, so the continuation is
// the same computation, not merely a similar one.
type CheckpointConfig struct {
	// Dir is the checkpoint store directory.
	Dir string
	// Every saves a snapshot after every Every completed iterations (a
	// snapshot taken after iteration k-1 stores Step k). Zero disables
	// periodic saving (useful with Resume to only read).
	Every int
	// Resume loads the newest valid checkpoint from Dir (falling back past
	// corrupt files) and continues from its Step. A fresh/empty store
	// starts from iteration 0.
	Resume bool
	// Keep overrides how many checkpoints survive garbage collection
	// (default 2: latest plus one fallback).
	Keep int
}

// ckptRunner is the per-run checkpoint driver shared by TrainLinear and
// TrainMLP.
type ckptRunner struct {
	store *ckpt.Store
	every int
	tel   *telemetry.Set
}

// newCkptRunner opens the store (nil config → nil runner, checkpointing
// disabled).
func newCkptRunner(cc *CheckpointConfig, tel *telemetry.Set) (*ckptRunner, error) {
	if cc == nil {
		return nil, nil
	}
	if cc.Dir == "" {
		return nil, fmt.Errorf("trainer: CheckpointConfig.Dir is empty")
	}
	st, err := ckpt.OpenStore(cc.Dir)
	if err != nil {
		return nil, err
	}
	if cc.Keep > 0 {
		st.Keep = cc.Keep
	}
	return &ckptRunner{store: st, every: cc.Every, tel: tel}, nil
}

// resume loads the latest valid snapshot, or nil when the store is empty
// (fresh start). Corrupt-latest fallbacks are counted in telemetry. The
// snapshot is validated against the run configuration: resuming a run under
// a different algorithm or worker count would make the restored residuals
// and RNG streams meaningless.
func (cr *ckptRunner) resume(cfg *Config, task string) (*ckpt.Snapshot, error) {
	snap, skipped, err := cr.store.LoadLatest()
	if m := cr.tel.M(); m != nil && len(skipped) > 0 {
		m.Counter("hipress_ckpt_fallbacks_total",
			"checkpoints skipped as corrupt during resume").Add(float64(len(skipped)))
	}
	if errors.Is(err, ckpt.ErrNoCheckpoint) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	if snap.Algo != cfg.Algo {
		return nil, fmt.Errorf("trainer: checkpoint was taken under algo %q, run uses %q", snap.Algo, cfg.Algo)
	}
	if got := snap.Meta["task"]; got != task {
		return nil, fmt.Errorf("trainer: checkpoint is for task %q, run is %q", got, task)
	}
	if got := snap.Meta["workers"]; got != strconv.Itoa(cfg.Workers) {
		return nil, fmt.Errorf("trainer: checkpoint has %s workers, run has %d", got, cfg.Workers)
	}
	if snap.Step > cfg.Iters {
		return nil, fmt.Errorf("trainer: checkpoint step %d beyond run's %d iterations", snap.Step, cfg.Iters)
	}
	if m := cr.tel.M(); m != nil {
		m.Counter("hipress_ckpt_resumes_total", "training runs resumed from a checkpoint").Inc()
	}
	return snap, nil
}

// maybeSave persists a snapshot when iteration it (0-based, just completed)
// hits the period. capture builds the snapshot lazily so non-checkpoint
// iterations pay nothing.
func (cr *ckptRunner) maybeSave(it int, capture func() *ckpt.Snapshot) error {
	if cr == nil || cr.every <= 0 || (it+1)%cr.every != 0 {
		return nil
	}
	var start float64
	tr := cr.tel.T()
	if tr.Enabled() {
		start = tr.Now()
	}
	snap := capture()
	if _, err := cr.store.Save(snap); err != nil {
		return fmt.Errorf("trainer: checkpoint at step %d: %w", snap.Step, err)
	}
	if tr.Enabled() {
		tr.Record(telemetry.Span{
			Name: fmt.Sprintf("ckpt save step %d", snap.Step), Cat: "ckpt",
			Node: 0, Stream: "comp", Start: start, Dur: tr.Now() - start,
		}.With(telemetry.Num("step", float64(snap.Step))))
	}
	if m := cr.tel.M(); m != nil {
		m.Counter("hipress_ckpt_saves_total", "checkpoints written").Inc()
	}
	return nil
}

// Checkpoint metadata keys for the autotuning plane's plan epoch.
const (
	metaEpochKey   = "autotune/epoch" // hex of the canonical epoch frame
	metaEpochRound = "autotune/round" // round index the epoch was captured at
)

// captureEpoch records the plan epoch the next round will execute under —
// NextEpoch, so a snapshot taken between a staged epoch switch and its
// round-barrier activation resumes into the post-switch plan, exactly what
// the uninterrupted run would have executed.
func captureEpoch(meta map[string]string, lc *core.LiveCluster) {
	meta[metaEpochKey] = hex.EncodeToString(core.EncodePlanEpoch(lc.NextEpoch()))
	meta[metaEpochRound] = strconv.FormatInt(lc.Rounds(), 10)
}

// restoreEpoch reinstalls the checkpointed plan epoch (a no-op for
// checkpoints predating the autotuning plane: the cluster keeps its default
// epoch). All peers restore from the same snapshot, so agreement is
// implicit and the broadcast protocol is bypassed.
func restoreEpoch(snap *ckpt.Snapshot, lc *core.LiveCluster) error {
	enc, ok := snap.Meta[metaEpochKey]
	if !ok {
		return nil
	}
	frame, err := hex.DecodeString(enc)
	if err != nil {
		return fmt.Errorf("trainer: checkpoint epoch frame: %w", err)
	}
	ep, err := core.DecodePlanEpoch(frame)
	if err != nil {
		return fmt.Errorf("trainer: checkpoint epoch frame: %w", err)
	}
	round, err := strconv.ParseInt(snap.Meta[metaEpochRound], 10, 64)
	if err != nil {
		return fmt.Errorf("trainer: checkpoint epoch round: %w", err)
	}
	return lc.RestoreEpoch(ep, round)
}

// cloneParams copies compressor params into the snapshot's float map.
func cloneParams(p map[string]float64) map[string]float64 {
	if len(p) == 0 {
		return nil
	}
	out := make(map[string]float64, len(p))
	for k, v := range p {
		out[k] = v
	}
	return out
}

// restoreTensor copies a named snapshot tensor into dst, demanding an exact
// length match (a dimension mismatch means the checkpoint belongs to a
// different model).
func restoreTensor(snap *ckpt.Snapshot, name string, dst []float32) error {
	src, ok := snap.Tensors[name]
	if !ok {
		return fmt.Errorf("trainer: checkpoint is missing tensor %q", name)
	}
	if len(src) != len(dst) {
		return fmt.Errorf("trainer: checkpoint tensor %q has %d elements, model wants %d", name, len(src), len(dst))
	}
	copy(dst, src)
	return nil
}

// restoreRNG rewinds rng to the named saved stream position.
func restoreRNG(snap *ckpt.Snapshot, name string, rng *tensor.RNG) error {
	st, ok := snap.RNG[name]
	if !ok {
		return fmt.Errorf("trainer: checkpoint is missing RNG state %q", name)
	}
	rng.Restore(tensor.RNGState(st))
	return nil
}

func workerRNGKey(v int) string { return "rng/worker/" + strconv.Itoa(v) }
