package trainer

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"hipress/internal/autotune"
	"hipress/internal/compress"
	"hipress/internal/core"
)

// curveTail returns the (iter, loss) pairs of c recorded at or after from.
func curveTail(c *Curve, from int) ([]int, []float64) {
	var its []int
	var ls []float64
	for i, it := range c.Iters {
		if it >= from {
			its = append(its, it)
			ls = append(ls, c.Losses[i])
		}
	}
	return its, ls
}

// requireBitIdenticalTail fails unless resumed's curve matches the
// uninterrupted reference bit-for-bit from iteration `from` on.
func requireBitIdenticalTail(t *testing.T, label string, ref, resumed *Curve, from int) {
	t.Helper()
	refIts, refLs := curveTail(ref, from)
	if len(resumed.Iters) != len(refIts) {
		t.Fatalf("%s: resumed curve has %d entries, reference tail has %d", label, len(resumed.Iters), len(refIts))
	}
	for i := range refIts {
		if resumed.Iters[i] != refIts[i] {
			t.Fatalf("%s: resumed records iter %d where reference has %d", label, resumed.Iters[i], refIts[i])
		}
		if math.Float64bits(resumed.Losses[i]) != math.Float64bits(refLs[i]) {
			t.Fatalf("%s: loss at iter %d diverged: resumed %x (%v) vs reference %x (%v)",
				label, refIts[i],
				math.Float64bits(resumed.Losses[i]), resumed.Losses[i],
				math.Float64bits(refLs[i]), refLs[i])
		}
	}
}

// TestKillResumeBitIdentical is the recovery plane's headline guarantee:
// training that is killed at iteration k and resumed from its checkpoint
// produces a loss curve (and final weights) bit-identical to the
// uninterrupted run. This only holds if the checkpoint captured *all*
// mutable state — parameters, momentum velocities, per-worker data RNG
// positions, error-feedback residuals at every node, and stateful
// compressor RNG streams — so the test exercises the entire recovery plane
// end to end for a biased sparsifier (dgc), a biased quantizer (onebit),
// and a stochastic quantizer with live RNG state (terngrad).
func TestKillResumeBitIdentical(t *testing.T) {
	task := NewLinearTask(24, 0.05, 9)
	cases := []struct {
		name string
		cfg  Config
	}{
		{"dgc-ps-momentum-correction", Config{
			Workers: 3, Strategy: core.StrategyPS,
			Algo: "dgc", Params: compress.Params{"ratio": 0.25}, ErrorFeedback: true,
			Momentum: 0.9, MomentumCorrection: true,
		}},
		{"onebit-ring-momentum", Config{
			Workers: 3, Strategy: core.StrategyRing,
			Algo: "onebit", ErrorFeedback: true, Momentum: 0.5,
		}},
		{"terngrad-ps-stateful-rng", Config{
			Workers: 3, Strategy: core.StrategyPS,
			Algo: "terngrad", ErrorFeedback: true,
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg
			cfg.LR = 0.1
			cfg.Batch = 4
			cfg.Iters = 60
			cfg.EvalEvery = 5
			cfg.Seed = 11
			cfg.Parts = 2

			// Uninterrupted reference.
			ref, refW, err := TrainLinear(task, cfg)
			if err != nil {
				t.Fatal(err)
			}

			// Killed run: checkpoints every 20 iterations, "crashes" (exits)
			// at iteration 35 — so the latest durable state is step 20.
			dir := t.TempDir()
			killed := cfg
			killed.Iters = 35
			killed.Checkpoint = &CheckpointConfig{Dir: dir, Every: 20}
			if _, _, err := TrainLinear(task, killed); err != nil {
				t.Fatal(err)
			}

			// Resumed run: fresh process state, everything rebuilt from the
			// checkpoint, trained to the same horizon as the reference.
			resumed := cfg
			resumed.Checkpoint = &CheckpointConfig{Dir: dir, Every: 20, Resume: true}
			got, gotW, err := TrainLinear(task, resumed)
			if err != nil {
				t.Fatal(err)
			}

			requireBitIdenticalTail(t, tc.name, ref, got, 20)
			for i := range refW {
				if math.Float32bits(gotW[i]) != math.Float32bits(refW[i]) {
					t.Fatalf("final weight [%d] diverged: %x vs %x",
						i, math.Float32bits(gotW[i]), math.Float32bits(refW[i]))
				}
			}
		})
	}
}

// TestKillResumePipelinedWindows extends the recovery guarantee to the
// pipelined send engine: with W transfers in flight per link, ack batching,
// and encode/transfer overlap, a killed-and-resumed run must still land on
// the uninterrupted sequential run's exact curve — in-flight windows are
// round-internal state, invisible to checkpoints, so the window must change
// neither what a round computes nor what a snapshot captures.
func TestKillResumePipelinedWindows(t *testing.T) {
	task := NewLinearTask(24, 0.05, 9)
	cfg := Config{
		Workers: 3, Strategy: core.StrategyPS,
		Algo: "onebit", ErrorFeedback: true, Momentum: 0.5,
		LR: 0.1, Batch: 4, Iters: 60, EvalEvery: 5, Seed: 11, Parts: 2,
	}

	// Sequential uninterrupted reference (zero-value Pipeline).
	ref, refW, err := TrainLinear(task, cfg)
	if err != nil {
		t.Fatal(err)
	}

	pipelined := cfg
	pipelined.Pipeline = core.PipelineConfig{Window: 4, AckBatch: 4, OverlapEncode: true}

	// A full pipelined run must already be bit-identical to the sequential
	// reference — every recorded loss, not just the tail.
	full, fullW, err := TrainLinear(task, pipelined)
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdenticalTail(t, "pipelined-full", ref, full, 0)
	for i := range refW {
		if math.Float32bits(fullW[i]) != math.Float32bits(refW[i]) {
			t.Fatalf("pipelined final weight [%d] diverged: %x vs %x",
				i, math.Float32bits(fullW[i]), math.Float32bits(refW[i]))
		}
	}

	// Kill the pipelined run at iteration 35 (latest durable state: 20) and
	// resume it, still pipelined, to the reference horizon.
	dir := t.TempDir()
	killed := pipelined
	killed.Iters = 35
	killed.Checkpoint = &CheckpointConfig{Dir: dir, Every: 20}
	if _, _, err := TrainLinear(task, killed); err != nil {
		t.Fatal(err)
	}
	resumed := pipelined
	resumed.Checkpoint = &CheckpointConfig{Dir: dir, Every: 20, Resume: true}
	got, gotW, err := TrainLinear(task, resumed)
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdenticalTail(t, "pipelined-resume", ref, got, 20)
	for i := range refW {
		if math.Float32bits(gotW[i]) != math.Float32bits(refW[i]) {
			t.Fatalf("resumed final weight [%d] diverged: %x vs %x",
				i, math.Float32bits(gotW[i]), math.Float32bits(refW[i]))
		}
	}
}

// TestKillResumeBitIdenticalMLP covers the same guarantee on the nonlinear
// task (four parameter tensors, no momentum state).
func TestKillResumeBitIdenticalMLP(t *testing.T) {
	task := NewMLPTask(8, 6, 3)
	cfg := Config{
		Workers: 2, Strategy: core.StrategyPS,
		Algo: "dgc", Params: compress.Params{"ratio": 0.25}, ErrorFeedback: true,
		LR: 0.1, Batch: 4, Iters: 40, EvalEvery: 5, Seed: 21,
	}
	ref, err := TrainMLP(task, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	killed := cfg
	killed.Iters = 25
	killed.Checkpoint = &CheckpointConfig{Dir: dir, Every: 10}
	if _, err := TrainMLP(task, killed); err != nil {
		t.Fatal(err)
	}
	resumed := cfg
	resumed.Checkpoint = &CheckpointConfig{Dir: dir, Every: 10, Resume: true}
	got, err := TrainMLP(task, resumed)
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdenticalTail(t, "mlp", ref, got, 20)
}

// TestResumeFallsBackPastCorruptCheckpoint: when the newest checkpoint file
// is damaged after the crash, resume transparently restarts from the
// previous good one — and the continuation is still bit-identical.
func TestResumeFallsBackPastCorruptCheckpoint(t *testing.T) {
	task := NewLinearTask(16, 0.05, 5)
	cfg := Config{
		Workers: 2, Strategy: core.StrategyPS,
		Algo: "onebit", ErrorFeedback: true,
		LR: 0.1, Batch: 4, Iters: 40, EvalEvery: 5, Seed: 7,
	}
	ref, _, err := TrainLinear(task, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	killed := cfg
	killed.Iters = 35
	killed.Checkpoint = &CheckpointConfig{Dir: dir, Every: 10} // saves 10, 20, 30; keeps 20, 30
	if _, _, err := TrainLinear(task, killed); err != nil {
		t.Fatal(err)
	}
	// Bit-flip the newest checkpoint (step 30).
	matches, err := filepath.Glob(filepath.Join(dir, "ckpt-*.hpck"))
	if err != nil || len(matches) != 2 {
		t.Fatalf("want 2 retained checkpoints, got %v (%v)", matches, err)
	}
	latest := matches[len(matches)-1]
	raw, err := os.ReadFile(latest)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x10
	if err := os.WriteFile(latest, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	resumed := cfg
	resumed.Checkpoint = &CheckpointConfig{Dir: dir, Resume: true}
	got, _, err := TrainLinear(task, resumed)
	if err != nil {
		t.Fatal(err)
	}
	// Fallback resumed from step 20, so the curve tail starts there.
	requireBitIdenticalTail(t, "fallback", ref, got, 20)
}

// TestResumeRejectsMismatchedConfig: a checkpoint from one configuration
// must not silently seed a different one.
func TestResumeRejectsMismatchedConfig(t *testing.T) {
	task := NewLinearTask(16, 0.05, 5)
	dir := t.TempDir()
	cfg := Config{
		Workers: 2, Strategy: core.StrategyPS, Algo: "onebit", ErrorFeedback: true,
		LR: 0.1, Batch: 4, Iters: 20, Seed: 7,
		Checkpoint: &CheckpointConfig{Dir: dir, Every: 10},
	}
	if _, _, err := TrainLinear(task, cfg); err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.Algo = "dgc"
	bad.Params = compress.Params{"ratio": 0.5}
	bad.Checkpoint = &CheckpointConfig{Dir: dir, Resume: true}
	if _, _, err := TrainLinear(task, bad); err == nil {
		t.Fatal("resume under a different algo succeeded")
	}
	badW := cfg
	badW.Workers = 3
	badW.Checkpoint = &CheckpointConfig{Dir: dir, Resume: true}
	if _, _, err := TrainLinear(task, badW); err == nil {
		t.Fatal("resume under a different worker count succeeded")
	}
}

// TestKillResumeBitIdenticalMidEpochSwitch extends the recovery guarantee
// to the autotuning plane: a run whose synchronization plan changes mid-
// training via scripted epoch switches — one staged-but-not-yet-activated
// at the exact checkpoint boundary, one scheduled after the kill point —
// is killed and resumed, and the continuation must be bit-identical. This
// only holds if checkpoints record NextEpoch (the staged pending plan, not
// the still-active old one) and resume both reinstalls it and fast-
// forwards the decision script past already-applied switches.
func TestKillResumeBitIdenticalMidEpochSwitch(t *testing.T) {
	task := NewLinearTask(24, 0.05, 9)
	// The scripted decisions: after round 19's observation the plan flips
	// to raw with a different partitioning — proposed and staged during
	// iteration 19, activating at round 20, exactly straddling the Every=20
	// checkpoint. After round 44 it flips back to compressed single-part.
	trace := autotune.DecisionTrace{Switches: []autotune.TraceSwitch{
		{AfterRound: 19, Epoch: core.PlanEpoch{
			Strategy: core.StrategyPS, Parts: 3, CompressMin: -1}},
		{AfterRound: 44, Epoch: core.PlanEpoch{
			Strategy: core.StrategyPS, Parts: 1, CompressMin: 0}},
	}}
	cfg := Config{
		Workers: 3, Strategy: core.StrategyPS,
		Algo: "onebit", ErrorFeedback: true, Momentum: 0.5,
		LR: 0.1, Batch: 4, Iters: 60, EvalEvery: 5, Seed: 11, Parts: 2,
	}

	// Uninterrupted reference (fresh script: Script replay is stateful).
	ref := cfg
	ref.Autotune = autotune.NewScript(trace)
	refCurve, refW, err := TrainLinear(task, ref)
	if err != nil {
		t.Fatal(err)
	}

	// The switches must actually change the computation, or the scenario
	// has no teeth: compare against the same run with a frozen plan.
	frozen := cfg
	frozenCurve, _, err := TrainLinear(task, frozen)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range refCurve.Losses {
		if math.Float64bits(refCurve.Losses[i]) != math.Float64bits(frozenCurve.Losses[i]) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("scripted epoch switches did not change the training trajectory")
	}

	// Killed at iteration 35: the newest durable checkpoint is step 20,
	// whose snapshot was captured with switch #1 staged but not active.
	dir := t.TempDir()
	killed := cfg
	killed.Iters = 35
	killed.Autotune = autotune.NewScript(trace)
	killed.Checkpoint = &CheckpointConfig{Dir: dir, Every: 20}
	if _, _, err := TrainLinear(task, killed); err != nil {
		t.Fatal(err)
	}

	// Resumed with a fresh script over the same trace: SeekRound must skip
	// the already-applied switch and still replay the post-kill one.
	resumed := cfg
	resumed.Autotune = autotune.NewScript(trace)
	resumed.Checkpoint = &CheckpointConfig{Dir: dir, Every: 20, Resume: true}
	gotCurve, gotW, err := TrainLinear(task, resumed)
	if err != nil {
		t.Fatal(err)
	}

	requireBitIdenticalTail(t, "mid-epoch-switch", refCurve, gotCurve, 20)
	for i := range refW {
		if math.Float32bits(gotW[i]) != math.Float32bits(refW[i]) {
			t.Fatalf("final weight [%d] diverged: %x vs %x",
				i, math.Float32bits(gotW[i]), math.Float32bits(refW[i]))
		}
	}
}
