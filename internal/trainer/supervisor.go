package trainer

import (
	"errors"
	"fmt"
	"time"

	"hipress/internal/core"
	"hipress/internal/netsim"
)

// This file is the self-healing layer on top of the recovery plane: a
// supervisor loop that classifies round failures, restarts training from
// the latest crash-consistent checkpoint on transient ones, and gives up
// (surfacing the original error) on fatal ones or when the restart budget
// is exhausted. Because resume-from-checkpoint is bit-identical (see
// checkpoint.go), a supervised run that weathered k transient failures
// produces exactly the same weights as an uninterrupted one.

// ErrClass is the supervisor's verdict on a training error.
type ErrClass int

const (
	// ErrTransient errors (round timeouts, peer failures) are worth a
	// restart from the latest checkpoint: the cluster may have healed, a
	// straggler recovered, or a convicted peer rejoined.
	ErrTransient ErrClass = iota
	// ErrFatal errors (bad config, I/O failures, anything not recognizably
	// a distributed-round fault) are surfaced immediately.
	ErrFatal
)

// String implements fmt.Stringer.
func (c ErrClass) String() string {
	switch c {
	case ErrTransient:
		return "transient"
	case ErrFatal:
		return "fatal"
	default:
		return fmt.Sprintf("ErrClass(%d)", int(c))
	}
}

// Classify is the default error classifier: the live plane's typed round
// faults — round deadline overruns, peer failures, and socket-plane
// connection failures that escaped the redial budget — are transient (the
// cluster may heal between attempts); everything else is fatal.
func Classify(err error) ErrClass {
	var rte *core.RoundTimeoutError
	var pfe *core.PeerFailureError
	var ce *netsim.ConnError
	if errors.As(err, &rte) || errors.As(err, &pfe) || errors.As(err, &ce) {
		return ErrTransient
	}
	return ErrFatal
}

// SupervisorConfig bounds the restart loop.
type SupervisorConfig struct {
	// MaxRestarts caps how many times the supervisor restarts a failed run
	// (0 → 3; negative disables restarts entirely).
	MaxRestarts int
	// Backoff is an optional wait before each restart (straight delay, no
	// escalation — checkpoint resume already bounds the repeated work).
	Backoff time.Duration
	// Classify overrides the error classifier (nil → Classify).
	Classify func(error) ErrClass
}

func (s SupervisorConfig) withDefaults() SupervisorConfig {
	if s.MaxRestarts == 0 {
		s.MaxRestarts = 3
	}
	if s.Classify == nil {
		s.Classify = Classify
	}
	return s
}

// MetricSupervisorRestarts counts checkpoint-resume restarts performed by
// the trainer supervisor.
const MetricSupervisorRestarts = "hipress_supervisor_restarts_total"

// SupervisorReport records what the supervisor did.
type SupervisorReport struct {
	// Restarts is the number of checkpoint-resume restarts performed.
	Restarts int
	// Transient lists the error strings that triggered each restart, in
	// order.
	Transient []string
}

// SuperviseLinear runs TrainLinear under supervision: every iteration
// checkpoints per cfg.Checkpoint, and when a run dies with a transient
// error the supervisor restarts it with Resume=true — picking up from the
// latest snapshot, bit-identical to never having failed. Fatal errors and
// budget exhaustion surface the underlying error alongside the report of
// everything tried. Requires an enabled checkpoint plane (Dir set,
// Every > 0): supervision without durable state would silently replay from
// scratch instead of resuming.
func SuperviseLinear(task *LinearTask, cfg Config, sup SupervisorConfig) (*Curve, []float32, *SupervisorReport, error) {
	if cfg.Checkpoint == nil || cfg.Checkpoint.Dir == "" || cfg.Checkpoint.Every <= 0 {
		return nil, nil, nil, fmt.Errorf("trainer: the supervisor requires an enabled checkpoint plane (Checkpoint.Dir and Checkpoint.Every); restarts resume from its snapshots")
	}
	sup = sup.withDefaults()
	report := &SupervisorReport{}
	run := cfg
	for {
		curve, w, err := TrainLinear(task, run)
		if err == nil {
			return curve, w, report, nil
		}
		if class := sup.Classify(err); class != ErrTransient {
			return nil, nil, report, fmt.Errorf("trainer: supervisor: fatal error (not restartable): %w", err)
		}
		if report.Restarts >= sup.MaxRestarts {
			return nil, nil, report, fmt.Errorf("trainer: supervisor: restart budget (%d) exhausted: %w", sup.MaxRestarts, err)
		}
		report.Restarts++
		report.Transient = append(report.Transient, err.Error())
		if tr := cfg.Telemetry.T(); tr.Enabled() {
			tr.Event(fmt.Sprintf("supervisor restart %d/%d: %v", report.Restarts, sup.MaxRestarts, err),
				"supervisor", 0, "ckpt", tr.Now())
		}
		if m := cfg.Telemetry.M(); m != nil {
			m.Counter(MetricSupervisorRestarts, "checkpoint-resume restarts performed by the trainer supervisor").Inc()
		}
		if sup.Backoff > 0 {
			time.Sleep(sup.Backoff)
		}
		// Restart from the latest snapshot: same config, Resume forced on.
		cc := *cfg.Checkpoint
		cc.Resume = true
		run = cfg
		run.Checkpoint = &cc
	}
}
