package trainer

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"hipress/internal/core"
	"hipress/internal/netsim"
)

// TestClassify pins the default triage: the live plane's typed round
// faults are transient (including when wrapped), everything else fatal.
func TestClassify(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want ErrClass
	}{
		{"round-timeout", &core.RoundTimeoutError{Timeout: time.Second}, ErrTransient},
		{"peer-failure", &core.PeerFailureError{Node: 0, Peer: 2, Attempts: 5, Reason: "x"}, ErrTransient},
		{"wrapped-timeout", fmt.Errorf("round 7: %w", &core.RoundTimeoutError{}), ErrTransient},
		{"conn-error", &netsim.ConnError{From: 0, To: 1, Gen: 3, Redials: 2, Err: errors.New("broken pipe")}, ErrTransient},
		{"wrapped-conn-error", fmt.Errorf("send w1/p0: %w", &netsim.ConnError{From: 1, To: 0, Err: errors.New("reset")}), ErrTransient},
		{"generic", errors.New("disk on fire"), ErrFatal},
		{"config", fmt.Errorf("trainer: need at least 2 workers"), ErrFatal},
	}
	for _, tc := range cases {
		if got := Classify(tc.err); got != tc.want {
			t.Errorf("%s: Classify(%v) = %v, want %v", tc.name, tc.err, got, tc.want)
		}
	}
}

// TestSupervisorBitIdenticalRestart is the self-healing guarantee: a run
// that dies with a transient round fault mid-training and is auto-restarted
// by the supervisor from its latest checkpoint converges bit-identically to
// a run that never failed — same loss tail, same final weight bits.
func TestSupervisorBitIdenticalRestart(t *testing.T) {
	task := NewLinearTask(24, 0.05, 9)
	cfg := Config{
		Workers: 3, Strategy: core.StrategyPS,
		Algo: "onebit", ErrorFeedback: true,
		LR: 0.1, Batch: 4, Iters: 60, EvalEvery: 5, Seed: 11, Parts: 2,
	}

	// Uninterrupted reference (no checkpointing, no faults).
	ref, refW, err := TrainLinear(task, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Supervised run: a simulated straggler collapse kills iteration 35
	// exactly once; checkpoints land every 20 iterations, so the restart
	// resumes from step 20 and retrains through the fault point.
	fired := false
	sup := cfg
	sup.Checkpoint = &CheckpointConfig{Dir: t.TempDir(), Every: 20}
	sup.FaultHook = func(iter int) error {
		if iter == 35 && !fired {
			fired = true
			return &core.RoundTimeoutError{Timeout: time.Second}
		}
		return nil
	}
	got, gotW, report, err := SuperviseLinear(task, sup, SupervisorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("fault hook never fired: the test exercised nothing")
	}
	if report.Restarts != 1 {
		t.Fatalf("want exactly 1 restart, got %d (%v)", report.Restarts, report.Transient)
	}
	requireBitIdenticalTail(t, "supervised", ref, got, 20)
	for i := range refW {
		if math.Float32bits(gotW[i]) != math.Float32bits(refW[i]) {
			t.Fatalf("final weight [%d] diverged after supervised restart: %x vs %x",
				i, math.Float32bits(gotW[i]), math.Float32bits(refW[i]))
		}
	}
}

// TestSupervisorFatalNotRetried: a fatal error surfaces immediately with
// zero restarts — the supervisor must not burn checkpoint-resume cycles on
// errors a retry cannot fix.
func TestSupervisorFatalNotRetried(t *testing.T) {
	task := NewLinearTask(16, 0.05, 5)
	calls := 0
	cfg := Config{
		Workers: 2, Strategy: core.StrategyPS, Algo: "onebit", ErrorFeedback: true,
		LR: 0.1, Batch: 4, Iters: 30, Seed: 7,
		Checkpoint: &CheckpointConfig{Dir: t.TempDir(), Every: 10},
		FaultHook: func(iter int) error {
			if iter == 5 {
				calls++
				return errors.New("disk on fire")
			}
			return nil
		},
	}
	_, _, report, err := SuperviseLinear(task, cfg, SupervisorConfig{})
	if err == nil || !strings.Contains(err.Error(), "fatal") {
		t.Fatalf("want fatal supervisor error, got %v", err)
	}
	if calls != 1 {
		t.Fatalf("fatal error retried: hook fired %d times", calls)
	}
	if report.Restarts != 0 {
		t.Fatalf("fatal error produced %d restarts", report.Restarts)
	}
}

// TestSupervisorBudgetExhausted: a persistently failing run stops after
// MaxRestarts restarts and surfaces the underlying fault.
func TestSupervisorBudgetExhausted(t *testing.T) {
	task := NewLinearTask(16, 0.05, 5)
	cfg := Config{
		Workers: 2, Strategy: core.StrategyPS, Algo: "onebit", ErrorFeedback: true,
		LR: 0.1, Batch: 4, Iters: 30, Seed: 7,
		Checkpoint: &CheckpointConfig{Dir: t.TempDir(), Every: 10},
		FaultHook: func(iter int) error {
			if iter == 15 {
				return &core.RoundTimeoutError{Timeout: time.Second}
			}
			return nil
		},
	}
	_, _, report, err := SuperviseLinear(task, cfg, SupervisorConfig{MaxRestarts: 2})
	if err == nil || !strings.Contains(err.Error(), "restart budget") {
		t.Fatalf("want budget-exhausted error, got %v", err)
	}
	if report.Restarts != 2 {
		t.Fatalf("want 2 restarts before giving up, got %d", report.Restarts)
	}
	var rte *core.RoundTimeoutError
	if !errors.As(err, &rte) {
		t.Fatalf("budget error does not wrap the underlying fault: %v", err)
	}
}

// TestSupervisorRequiresCheckpoint: supervision without a durable
// checkpoint plane is refused up front (restarting from scratch would
// silently replay work instead of resuming).
func TestSupervisorRequiresCheckpoint(t *testing.T) {
	task := NewLinearTask(16, 0.05, 5)
	cfg := Config{Workers: 2, Strategy: core.StrategyPS, LR: 0.1, Batch: 4, Iters: 10, Seed: 7}
	if _, _, _, err := SuperviseLinear(task, cfg, SupervisorConfig{}); err == nil {
		t.Fatal("supervisor accepted a config with no checkpoint plane")
	}
}
