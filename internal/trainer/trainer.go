// Package trainer is the real-execution convergence plane: genuine
// data-parallel SGD where N in-process workers compute real gradients on
// synthetic learnable tasks and synchronize them through live CaSync with
// real compression. It validates the paper's Fig. 13 claim — compression-
// enabled training converges to the same quality, in less (simulated) wall
// time — end to end, with actual compressed bytes on the wire.
package trainer

import (
	"fmt"
	"math"
	"strconv"

	"hipress/internal/ckpt"
	"hipress/internal/compress"
	"hipress/internal/core"
	"hipress/internal/telemetry"
	"hipress/internal/tensor"
)

// Config describes one training run.
type Config struct {
	// Workers is the number of data-parallel nodes (≥ 2).
	Workers int
	// Strategy selects the live synchronization strategy.
	Strategy core.Strategy
	// Algo is the compression algorithm ("" = exact synchronization);
	// Params its parameters; ErrorFeedback enables residuals.
	Algo          string
	Params        compress.Params
	ErrorFeedback bool
	// Parts partitions each gradient during synchronization.
	Parts int
	// Pipeline tunes the live plane's pipelined send engine (per-link
	// in-flight windows, ack batching, encode/transfer overlap). The zero
	// value keeps sequential sends; any setting yields bit-identical
	// training trajectories — it changes round latency, never round bytes.
	Pipeline core.PipelineConfig

	// LR is the SGD learning rate; Batch the per-worker minibatch size;
	// Iters the iteration count.
	LR    float64
	Batch int
	Iters int
	// Momentum enables heavy-ball SGD (0 = plain SGD). With
	// MomentumCorrection (DGC §3's trick), each worker applies momentum
	// *locally before compression* and the synchronized quantity is the
	// velocity — so sparsified updates carry their accumulated momentum
	// instead of having stale momentum re-applied globally.
	Momentum           float64
	MomentumCorrection bool
	// Seed drives all data generation and initialization.
	Seed uint64
	// EvalEvery records the loss every this many iterations (0 → 10).
	EvalEvery int

	// Telemetry, when non-nil, receives wall-clock spans and metrics from
	// the live synchronization rounds (see internal/telemetry). Nil keeps
	// training uninstrumented with zero overhead.
	Telemetry *telemetry.Set

	// Autotune, when non-nil, closes the cost-model loop during training:
	// the cluster feeds it ack timings and round observations, and its
	// proposals re-plan synchronization through the epoch broadcast
	// protocol (see internal/autotune). Checkpoints record the active plan
	// epoch, so kill+resume lands in the same plan the uninterrupted run
	// would have executed.
	Autotune core.Autotuner

	// Checkpoint, when non-nil, enables the recovery plane: periodic
	// crash-consistent snapshots and resume-from-latest such that a killed
	// and resumed run is bit-identical to an uninterrupted one (see
	// CheckpointConfig).
	Checkpoint *CheckpointConfig

	// FaultHook, when non-nil, is called at the top of every iteration and
	// may return an error to abort the run there — the injection point the
	// supervisor tests use to simulate mid-training round failures. The
	// returned error surfaces unwrapped so errors.As classification works.
	FaultHook func(iter int) error
}

func (c *Config) defaults() error {
	if c.Workers < 2 {
		return fmt.Errorf("trainer: need at least 2 workers, got %d", c.Workers)
	}
	if c.LR <= 0 {
		c.LR = 0.05
	}
	if c.Batch <= 0 {
		c.Batch = 16
	}
	if c.Iters <= 0 {
		c.Iters = 100
	}
	if c.EvalEvery <= 0 {
		c.EvalEvery = 10
	}
	return nil
}

// Curve is a training trajectory: the loss at recorded iterations.
type Curve struct {
	Iters  []int
	Losses []float64
}

// Final returns the last recorded loss.
func (c *Curve) Final() float64 {
	if len(c.Losses) == 0 {
		return math.Inf(1)
	}
	return c.Losses[len(c.Losses)-1]
}

// FirstIterBelow returns the first recorded iteration whose loss is below
// target, or -1 if never reached.
func (c *Curve) FirstIterBelow(target float64) int {
	for i, l := range c.Losses {
		if l < target {
			return c.Iters[i]
		}
	}
	return -1
}

// --- linear regression task -----------------------------------------------------

// LinearTask is a noisy linear teacher: y = w*·x + ε. Convex, so exact and
// compressed SGD trajectories are cleanly comparable.
type LinearTask struct {
	Dim     int
	Noise   float64
	teacher []float32
}

// NewLinearTask builds a task with a fixed random teacher.
func NewLinearTask(dim int, noise float64, seed uint64) *LinearTask {
	w := make([]float32, dim)
	tensor.NewRNG(seed).FillNormal(w, 1)
	return &LinearTask{Dim: dim, Noise: noise, teacher: w}
}

// sample fills x and returns the label.
func (t *LinearTask) sample(rng *tensor.RNG, x []float32) float32 {
	rng.FillNormal(x, 1)
	return float32(tensor.Dot(x, t.teacher) + rng.NormFloat64()*t.Noise)
}

// TrainLinear runs data-parallel SGD on linear regression and returns the
// loss curve (mean squared error on a held-out set) plus the final weights.
func TrainLinear(task *LinearTask, cfg Config) (*Curve, []float32, error) {
	if err := cfg.defaults(); err != nil {
		return nil, nil, err
	}
	lc, err := core.NewLiveCluster(cfg.Workers, core.LiveConfig{
		Strategy:      cfg.Strategy,
		Algo:          cfg.Algo,
		Params:        cfg.Params,
		ErrorFeedback: cfg.ErrorFeedback,
		Parts:         cfg.Parts,
		Pipeline:      cfg.Pipeline,
		Telemetry:     cfg.Telemetry,
		Autotune:      cfg.Autotune,
	})
	if err != nil {
		return nil, nil, err
	}

	dim := task.Dim
	w := make([]float32, dim) // shared model, starts at zero
	workerRNG := make([]*tensor.RNG, cfg.Workers)
	for v := range workerRNG {
		workerRNG[v] = tensor.NewRNG(cfg.Seed*1000 + uint64(v) + 1)
	}

	// Held-out evaluation set.
	evalRNG := tensor.NewRNG(cfg.Seed + 777)
	const evalN = 256
	evalX := make([][]float32, evalN)
	evalY := make([]float32, evalN)
	for i := range evalX {
		evalX[i] = make([]float32, dim)
		evalY[i] = task.sample(evalRNG, evalX[i])
	}
	mse := func() float64 {
		var sum float64
		for i := range evalX {
			d := tensor.Dot(evalX[i], w) - float64(evalY[i])
			sum += d * d
		}
		return sum / evalN
	}

	curve := &Curve{}
	x := make([]float32, dim)
	// Momentum state: per-worker velocities when momentum correction is on
	// (each worker compresses its own velocity), one global velocity
	// otherwise (momentum applied after synchronization).
	localVel := make([][]float32, cfg.Workers)
	for v := range localVel {
		localVel[v] = make([]float32, dim)
	}
	globalVel := make([]float32, dim)

	// Recovery plane: open the store, optionally restore every piece of
	// mutable training state (weights, velocities, data RNG positions,
	// error-feedback residuals, compressor RNG streams) from the latest
	// valid checkpoint, and save periodically below.
	cr, err := newCkptRunner(cfg.Checkpoint, cfg.Telemetry)
	if err != nil {
		return nil, nil, err
	}
	startIt := 0
	if cr != nil && cfg.Checkpoint.Resume {
		snap, err := cr.resume(&cfg, "linear")
		if err != nil {
			return nil, nil, err
		}
		if snap != nil {
			if err := restoreTensor(snap, "w", w); err != nil {
				return nil, nil, err
			}
			if err := restoreTensor(snap, "vel/global", globalVel); err != nil {
				return nil, nil, err
			}
			for v := range localVel {
				if err := restoreTensor(snap, "vel/local/"+strconv.Itoa(v), localVel[v]); err != nil {
					return nil, nil, err
				}
			}
			for v := range workerRNG {
				if err := restoreRNG(snap, workerRNGKey(v), workerRNG[v]); err != nil {
					return nil, nil, err
				}
			}
			if err := lc.ImportState(snap.Residuals, snap.RNG); err != nil {
				return nil, nil, err
			}
			if err := restoreEpoch(snap, lc); err != nil {
				return nil, nil, err
			}
			startIt = snap.Step
		}
	}
	capture := func(step int) *ckpt.Snapshot {
		res, rng := lc.ExportState()
		for v := range workerRNG {
			rng[workerRNGKey(v)] = uint64(workerRNG[v].Save())
		}
		tensors := map[string][]float32{
			"w":          tensor.Clone(w),
			"vel/global": tensor.Clone(globalVel),
		}
		for v := range localVel {
			tensors["vel/local/"+strconv.Itoa(v)] = tensor.Clone(localVel[v])
		}
		meta := map[string]string{"task": "linear", "workers": strconv.Itoa(cfg.Workers)}
		captureEpoch(meta, lc)
		return &ckpt.Snapshot{
			Step: step, Algo: cfg.Algo, Params: cloneParams(cfg.Params),
			Tensors: tensors, Residuals: res, RNG: rng,
			Meta: meta,
		}
	}

	// Per-worker gradient buffers and the grads maps are allocated once and
	// reused every iteration (SyncRound reads them during the round only and
	// returns freshly allocated results), so the step loop stays off the
	// allocator. Values are identical to per-iteration allocation — resume
	// bit-identity is unaffected.
	grads := make([]map[string][]float32, cfg.Workers)
	gbuf := make([][]float32, cfg.Workers)
	for v := range gbuf {
		gbuf[v] = make([]float32, dim)
		grads[v] = map[string][]float32{"w": gbuf[v]}
	}
	for it := startIt; it < cfg.Iters; it++ {
		if cfg.FaultHook != nil {
			if err := cfg.FaultHook(it); err != nil {
				return nil, nil, err
			}
		}
		for v := 0; v < cfg.Workers; v++ {
			g := gbuf[v]
			clear(g)
			rng := workerRNG[v]
			for b := 0; b < cfg.Batch; b++ {
				y := task.sample(rng, x)
				pred := tensor.Dot(x, w)
				resid := float32(pred) - y
				// ∂/∂w of (w·x − y)² / 2 = (w·x − y)·x
				tensor.AXPY(g, resid/float32(cfg.Batch), x)
			}
			if cfg.Momentum > 0 && cfg.MomentumCorrection {
				// DGC momentum correction: u ← m·u + g locally; the
				// velocity is what gets (sparsely) synchronized.
				tensor.Scale(localVel[v], float32(cfg.Momentum))
				tensor.Add(localVel[v], g)
				copy(g, localVel[v])
			}
		}
		out, err := lc.SyncRound(grads)
		if err != nil {
			return nil, nil, err
		}
		// All nodes hold identical aggregates (BSP); apply the mean.
		step := out[0]["w"]
		if cfg.Momentum > 0 && !cfg.MomentumCorrection {
			// Conventional momentum on the synchronized gradient.
			tensor.Scale(globalVel, float32(cfg.Momentum))
			tensor.Add(globalVel, step)
			step = globalVel
		}
		tensor.AXPY(w, -float32(cfg.LR/float64(cfg.Workers)), step)
		if it%cfg.EvalEvery == 0 || it == cfg.Iters-1 {
			curve.Iters = append(curve.Iters, it)
			curve.Losses = append(curve.Losses, mse())
		}
		if err := cr.maybeSave(it, func() *ckpt.Snapshot { return capture(it + 1) }); err != nil {
			return nil, nil, err
		}
	}
	return curve, w, nil
}

// --- two-layer MLP task ------------------------------------------------------

// MLPTask is a small nonlinear regression problem: the target is a fixed
// random two-layer tanh network, so a student of the same shape can fit it
// to near-zero loss — giving the convergence comparison a nontrivial,
// non-convex loss surface.
type MLPTask struct {
	In, Hidden int
	teacher    *mlp
}

// NewMLPTask builds the task with a fixed teacher network.
func NewMLPTask(in, hidden int, seed uint64) *MLPTask {
	t := newMLP(in, hidden, tensor.NewRNG(seed))
	return &MLPTask{In: in, Hidden: hidden, teacher: t}
}

// mlp is y = w2·tanh(W1·x + b1) + b2 with flat parameter storage.
type mlp struct {
	in, hidden     int
	w1, b1, w2, b2 []float32
}

func newMLP(in, hidden int, rng *tensor.RNG) *mlp {
	m := &mlp{
		in: in, hidden: hidden,
		w1: make([]float32, in*hidden),
		b1: make([]float32, hidden),
		w2: make([]float32, hidden),
		b2: make([]float32, 1),
	}
	rng.FillNormal(m.w1, 1/math.Sqrt(float64(in)))
	rng.FillNormal(m.w2, 1/math.Sqrt(float64(hidden)))
	return m
}

// forward returns the output and the hidden activations.
func (m *mlp) forward(x []float32, hid []float32) float32 {
	for h := 0; h < m.hidden; h++ {
		var acc float64
		row := m.w1[h*m.in : (h+1)*m.in]
		for i, xi := range x {
			acc += float64(row[i]) * float64(xi)
		}
		hid[h] = float32(math.Tanh(acc + float64(m.b1[h])))
	}
	var out float64
	for h := 0; h < m.hidden; h++ {
		out += float64(m.w2[h]) * float64(hid[h])
	}
	return float32(out + float64(m.b2[0]))
}

// grads accumulates parameter gradients of the squared error at (x, y) into
// g (same layout as the mlp), scaled by scale.
func (m *mlp) grads(x []float32, y float32, hid []float32, g *mlp, scale float32) {
	pred := m.forward(x, hid)
	dOut := (pred - y) * scale
	g.b2[0] += dOut
	for h := 0; h < m.hidden; h++ {
		g.w2[h] += dOut * hid[h]
		dHid := dOut * m.w2[h] * (1 - hid[h]*hid[h])
		g.b1[h] += dHid
		row := g.w1[h*m.in : (h+1)*m.in]
		for i, xi := range x {
			row[i] += dHid * xi
		}
	}
}

func (m *mlp) gradsMap() map[string][]float32 {
	return map[string][]float32{"w1": m.w1, "b1": m.b1, "w2": m.w2, "b2": m.b2}
}

// TrainMLP trains a student network against the task's teacher with
// data-parallel compressed SGD.
func TrainMLP(task *MLPTask, cfg Config) (*Curve, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	lc, err := core.NewLiveCluster(cfg.Workers, core.LiveConfig{
		Strategy:      cfg.Strategy,
		Algo:          cfg.Algo,
		Params:        cfg.Params,
		ErrorFeedback: cfg.ErrorFeedback,
		Parts:         cfg.Parts,
		Pipeline:      cfg.Pipeline,
		Telemetry:     cfg.Telemetry,
		Autotune:      cfg.Autotune,
	})
	if err != nil {
		return nil, err
	}

	student := newMLP(task.In, task.Hidden, tensor.NewRNG(cfg.Seed+1))
	workerRNG := make([]*tensor.RNG, cfg.Workers)
	for v := range workerRNG {
		workerRNG[v] = tensor.NewRNG(cfg.Seed*4099 + uint64(v) + 13)
	}

	evalRNG := tensor.NewRNG(cfg.Seed + 555)
	const evalN = 200
	evalX := make([][]float32, evalN)
	evalY := make([]float32, evalN)
	hid := make([]float32, task.Hidden)
	for i := range evalX {
		evalX[i] = make([]float32, task.In)
		evalRNG.FillNormal(evalX[i], 1)
		evalY[i] = task.teacher.forward(evalX[i], hid)
	}
	mse := func() float64 {
		var sum float64
		for i := range evalX {
			d := float64(student.forward(evalX[i], hid) - evalY[i])
			sum += d * d
		}
		return sum / evalN
	}

	// Recovery plane: see TrainLinear. The MLP snapshot carries the four
	// student parameter tensors plus worker RNG and cluster state.
	cr, err := newCkptRunner(cfg.Checkpoint, cfg.Telemetry)
	if err != nil {
		return nil, err
	}
	startIt := 0
	if cr != nil && cfg.Checkpoint.Resume {
		snap, err := cr.resume(&cfg, "mlp")
		if err != nil {
			return nil, err
		}
		if snap != nil {
			for name, dst := range student.gradsMap() {
				if err := restoreTensor(snap, name, dst); err != nil {
					return nil, err
				}
			}
			for v := range workerRNG {
				if err := restoreRNG(snap, workerRNGKey(v), workerRNG[v]); err != nil {
					return nil, err
				}
			}
			if err := lc.ImportState(snap.Residuals, snap.RNG); err != nil {
				return nil, err
			}
			if err := restoreEpoch(snap, lc); err != nil {
				return nil, err
			}
			startIt = snap.Step
		}
	}
	capture := func(step int) *ckpt.Snapshot {
		res, rng := lc.ExportState()
		for v := range workerRNG {
			rng[workerRNGKey(v)] = uint64(workerRNG[v].Save())
		}
		tensors := map[string][]float32{}
		for name, src := range student.gradsMap() {
			tensors[name] = tensor.Clone(src)
		}
		meta := map[string]string{"task": "mlp", "workers": strconv.Itoa(cfg.Workers)}
		captureEpoch(meta, lc)
		return &ckpt.Snapshot{
			Step: step, Algo: cfg.Algo, Params: cloneParams(cfg.Params),
			Tensors: tensors, Residuals: res, RNG: rng,
			Meta: meta,
		}
	}

	curve := &Curve{}
	x := make([]float32, task.In)
	// Per-worker gradient accumulators allocated once, zeroed per iteration
	// (see TrainLinear: SyncRound does not retain its inputs).
	gw := make([]*mlp, cfg.Workers)
	grads := make([]map[string][]float32, cfg.Workers)
	for v := range gw {
		gw[v] = &mlp{in: task.In, hidden: task.Hidden,
			w1: make([]float32, task.In*task.Hidden),
			b1: make([]float32, task.Hidden),
			w2: make([]float32, task.Hidden),
			b2: make([]float32, 1)}
		grads[v] = gw[v].gradsMap()
	}
	for it := startIt; it < cfg.Iters; it++ {
		if cfg.FaultHook != nil {
			if err := cfg.FaultHook(it); err != nil {
				return nil, err
			}
		}
		for v := 0; v < cfg.Workers; v++ {
			g := gw[v]
			clear(g.w1)
			clear(g.b1)
			clear(g.w2)
			clear(g.b2)
			rng := workerRNG[v]
			for b := 0; b < cfg.Batch; b++ {
				rng.FillNormal(x, 1)
				y := task.teacher.forward(x, hid)
				student.grads(x, y, hid, g, 1/float32(cfg.Batch))
			}
		}
		out, err := lc.SyncRound(grads)
		if err != nil {
			return nil, err
		}
		step := -float32(cfg.LR / float64(cfg.Workers))
		tensor.AXPY(student.w1, step, out[0]["w1"])
		tensor.AXPY(student.b1, step, out[0]["b1"])
		tensor.AXPY(student.w2, step, out[0]["w2"])
		tensor.AXPY(student.b2, step, out[0]["b2"])
		if it%cfg.EvalEvery == 0 || it == cfg.Iters-1 {
			curve.Iters = append(curve.Iters, it)
			curve.Losses = append(curve.Losses, mse())
		}
		if err := cr.maybeSave(it, func() *ckpt.Snapshot { return capture(it + 1) }); err != nil {
			return nil, err
		}
	}
	return curve, nil
}

// SeedSweep runs TrainLinear across several seeds and reports the mean and
// (population) standard deviation of the final loss — the variance evidence
// behind "converges to approximately the same accuracy" claims.
func SeedSweep(task *LinearTask, cfg Config, seeds []uint64) (mean, std float64, err error) {
	if len(seeds) == 0 {
		return 0, 0, fmt.Errorf("trainer: SeedSweep needs at least one seed")
	}
	finals := make([]float64, 0, len(seeds))
	for _, s := range seeds {
		c := cfg
		c.Seed = s
		curve, _, terr := TrainLinear(task, c)
		if terr != nil {
			return 0, 0, terr
		}
		finals = append(finals, curve.Final())
	}
	for _, f := range finals {
		mean += f
	}
	mean /= float64(len(finals))
	for _, f := range finals {
		std += (f - mean) * (f - mean)
	}
	std = math.Sqrt(std / float64(len(finals)))
	return mean, std, nil
}
