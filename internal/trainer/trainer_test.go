package trainer

import (
	"math"
	"testing"

	"hipress/internal/core"
)

func TestConfigDefaults(t *testing.T) {
	c := Config{Workers: 2}
	if err := c.defaults(); err != nil {
		t.Fatal(err)
	}
	if c.LR <= 0 || c.Batch <= 0 || c.Iters <= 0 || c.EvalEvery <= 0 {
		t.Fatalf("defaults not applied: %+v", c)
	}
	bad := Config{Workers: 1}
	if err := bad.defaults(); err == nil {
		t.Fatalf("1-worker config accepted")
	}
}

func TestLinearExactSGDConverges(t *testing.T) {
	task := NewLinearTask(20, 0.05, 7)
	curve, w, err := TrainLinear(task, Config{
		Workers: 4, Strategy: core.StrategyPS,
		LR: 0.1, Batch: 16, Iters: 150, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(w) != 20 {
		t.Fatalf("weights length %d", len(w))
	}
	first, last := curve.Losses[0], curve.Final()
	if last >= first/10 {
		t.Fatalf("exact SGD barely converged: %.4f -> %.4f", first, last)
	}
	if last > 0.1 {
		t.Fatalf("final MSE %.4f too high (noise floor ~0.0025)", last)
	}
}

// TestLinearCompressedMatchesExact: the paper's convergence claim —
// compression with error feedback reaches (approximately) the same loss in
// the same number of iterations.
func TestLinearCompressedMatchesExact(t *testing.T) {
	task := NewLinearTask(20, 0.05, 7)
	base := Config{
		Workers: 4, Strategy: core.StrategyPS,
		LR: 0.1, Batch: 16, Iters: 200, Seed: 1,
	}
	exact, _, err := TrainLinear(task, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []struct {
		name string
		p    map[string]float64
		ef   bool
	}{
		{"terngrad", map[string]float64{"bitwidth": 4}, false},
		{"dgc", map[string]float64{"ratio": 0.25}, true},
		{"onebit", nil, true},
	} {
		cfg := base
		cfg.Algo = algo.name
		cfg.Params = algo.p
		cfg.ErrorFeedback = algo.ef
		comp, _, err := TrainLinear(task, cfg)
		if err != nil {
			t.Fatalf("%s: %v", algo.name, err)
		}
		// Same iteration budget must reach a comparable loss: within 5× of
		// exact (compression adds gradient noise; it must not stall).
		if comp.Final() > exact.Final()*5+0.05 {
			t.Errorf("%s: final loss %.4f vs exact %.4f — compression broke convergence",
				algo.name, comp.Final(), exact.Final())
		}
	}
}

// TestCompressionWithoutFeedbackWorse: biased sparsification without error
// feedback must do worse than with it — the reason EF exists.
func TestCompressionWithoutFeedbackWorse(t *testing.T) {
	task := NewLinearTask(16, 0.05, 3)
	base := Config{
		Workers: 3, Strategy: core.StrategyPS,
		Algo: "dgc", Params: map[string]float64{"ratio": 0.1},
		LR: 0.1, Batch: 16, Iters: 150, Seed: 2,
	}
	withEF := base
	withEF.ErrorFeedback = true
	cEF, _, err := TrainLinear(task, withEF)
	if err != nil {
		t.Fatal(err)
	}
	cNo, _, err := TrainLinear(task, base)
	if err != nil {
		t.Fatal(err)
	}
	if cEF.Final() >= cNo.Final() {
		t.Errorf("error feedback did not help: with %.4f vs without %.4f", cEF.Final(), cNo.Final())
	}
}

func TestLinearRingStrategy(t *testing.T) {
	task := NewLinearTask(12, 0.05, 9)
	curve, _, err := TrainLinear(task, Config{
		Workers: 3, Strategy: core.StrategyRing,
		Algo: "terngrad", Params: map[string]float64{"bitwidth": 8},
		LR: 0.1, Batch: 8, Iters: 120, Seed: 4, Parts: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if curve.Final() > curve.Losses[0]/3 {
		t.Fatalf("ring compressed training barely converged: %v", curve.Losses)
	}
}

func TestMLPConverges(t *testing.T) {
	task := NewMLPTask(8, 12, 11)
	exact, err := TrainMLP(task, Config{
		Workers: 3, Strategy: core.StrategyPS,
		LR: 0.2, Batch: 32, Iters: 300, Seed: 5, EvalEvery: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if exact.Final() >= exact.Losses[0]/5 {
		t.Fatalf("MLP exact training barely converged: %v", exact.Losses)
	}
	comp, err := TrainMLP(task, Config{
		Workers: 3, Strategy: core.StrategyPS,
		Algo: "dgc", Params: map[string]float64{"ratio": 0.25}, ErrorFeedback: true,
		LR: 0.2, Batch: 32, Iters: 300, Seed: 5, EvalEvery: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if comp.Final() > exact.Final()*6+0.05 {
		t.Errorf("compressed MLP final %.4f vs exact %.4f", comp.Final(), exact.Final())
	}
}

func TestCurveHelpers(t *testing.T) {
	c := &Curve{Iters: []int{0, 10, 20}, Losses: []float64{1.0, 0.5, 0.1}}
	if c.Final() != 0.1 {
		t.Fatalf("Final = %v", c.Final())
	}
	if got := c.FirstIterBelow(0.6); got != 10 {
		t.Fatalf("FirstIterBelow(0.6) = %d", got)
	}
	if got := c.FirstIterBelow(0.01); got != -1 {
		t.Fatalf("FirstIterBelow(0.01) = %d", got)
	}
	empty := &Curve{}
	if f := empty.Final(); f == f && f < 1e300 { // +Inf check
		t.Fatalf("empty Final = %v", f)
	}
}

func TestTrainerDeterministic(t *testing.T) {
	task := NewLinearTask(10, 0.05, 21)
	cfg := Config{Workers: 3, Strategy: core.StrategyPS, Algo: "onebit", ErrorFeedback: true,
		LR: 0.1, Batch: 8, Iters: 40, Seed: 9}
	a, _, err := TrainLinear(task, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := TrainLinear(NewLinearTask(10, 0.05, 21), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Losses {
		if a.Losses[i] != b.Losses[i] {
			t.Fatalf("nondeterministic training at eval %d: %v vs %v", i, a.Losses[i], b.Losses[i])
		}
	}
}

// TestMomentumAccelerates: heavy-ball SGD reaches a lower loss than plain
// SGD in the same iteration budget on the exact path.
func TestMomentumAccelerates(t *testing.T) {
	task := NewLinearTask(30, 0.05, 17)
	base := Config{
		Workers: 3, Strategy: core.StrategyPS,
		LR: 0.02, Batch: 8, Iters: 80, Seed: 6,
	}
	plain, _, err := TrainLinear(task, base)
	if err != nil {
		t.Fatal(err)
	}
	mom := base
	mom.Momentum = 0.9
	fast, _, err := TrainLinear(task, mom)
	if err != nil {
		t.Fatal(err)
	}
	if fast.Final() >= plain.Final() {
		t.Errorf("momentum did not accelerate: %.5f vs plain %.5f", fast.Final(), plain.Final())
	}
}

// TestDGCMomentumCorrection: with aggressive sparsification, locally
// correcting momentum before compression (the DGC paper's core trick)
// converges to the naive-momentum quality — on this convex task it needs a
// longer horizon to amortize its slower start (its payoff in the DGC paper
// is on deep non-convex nets), and ends at least as good.
func TestDGCMomentumCorrection(t *testing.T) {
	task := NewLinearTask(30, 0.05, 23)
	base := Config{
		Workers: 3, Strategy: core.StrategyPS,
		Algo: "dgc", Params: map[string]float64{"ratio": 0.1}, ErrorFeedback: true,
		LR: 0.02, Batch: 8, Iters: 600, Seed: 8, Momentum: 0.9, EvalEvery: 100,
	}
	naive := base
	corrected := base
	corrected.MomentumCorrection = true
	nv, _, err := TrainLinear(task, naive)
	if err != nil {
		t.Fatal(err)
	}
	cv, _, err := TrainLinear(task, corrected)
	if err != nil {
		t.Fatal(err)
	}
	if cv.Final() > cv.Losses[0]/20 {
		t.Fatalf("momentum-corrected DGC barely converged: %v", cv.Losses)
	}
	if cv.Final() > nv.Final()*1.5 {
		t.Errorf("momentum correction worse than naive momentum at horizon: %.5f vs %.5f",
			cv.Final(), nv.Final())
	}
}

// TestAdaptiveCompressionTrains: the Accordion-style adaptive compressor
// works end to end on the live training plane.
func TestAdaptiveCompressionTrains(t *testing.T) {
	task := NewLinearTask(16, 0.05, 29)
	curve, _, err := TrainLinear(task, Config{
		Workers: 3, Strategy: core.StrategyPS,
		Algo:          "adaptive",
		Params:        map[string]float64{"conservative_ratio": 0.5, "aggressive_ratio": 0.05},
		ErrorFeedback: true,
		LR:            0.1, Batch: 16, Iters: 120, Seed: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	if curve.Final() > curve.Losses[0]/10 {
		t.Fatalf("adaptive compression barely converged: %v", curve.Losses)
	}
}

// TestSeedSweepOverlap: across seeds, compressed training's final-loss
// distribution overlaps exact training's — the statistical form of the
// paper's convergence claim.
func TestSeedSweepOverlap(t *testing.T) {
	task := NewLinearTask(16, 0.05, 41)
	seeds := []uint64{1, 2, 3, 4, 5}
	base := Config{
		Workers: 3, Strategy: core.StrategyPS,
		LR: 0.1, Batch: 16, Iters: 150,
	}
	exMean, exStd, err := SeedSweep(task, base, seeds)
	if err != nil {
		t.Fatal(err)
	}
	comp := base
	comp.Algo = "dgc"
	comp.Params = map[string]float64{"ratio": 0.25}
	comp.ErrorFeedback = true
	cpMean, cpStd, err := SeedSweep(task, comp, seeds)
	if err != nil {
		t.Fatal(err)
	}
	// Same loss floor within 3 pooled standard deviations (plus an absolute
	// epsilon for the near-zero-variance regime).
	spread := 3*(exStd+cpStd) + 0.01
	if diff := math.Abs(cpMean - exMean); diff > spread {
		t.Errorf("compressed mean %.5f vs exact %.5f exceeds spread %.5f", cpMean, exMean, spread)
	}
	if _, _, err := SeedSweep(task, base, nil); err == nil {
		t.Error("empty seed list accepted")
	}
}
